#include "common/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(StatisticsTest, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0, 4.0}).ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(Mean({5.0}).ValueOrDie(), 5.0);
}

TEST(StatisticsTest, MeanOfEmptyFails) {
  EXPECT_FALSE(Mean({}).ok());
}

TEST(StatisticsTest, SampleVariance) {
  // var of {2, 4, 4, 4, 5, 5, 7, 9} (sample) = 32/7.
  auto v = Variance({2, 4, 4, 4, 5, 5, 7, 9});
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 32.0 / 7.0, 1e-12);
}

TEST(StatisticsTest, VarianceNeedsTwoValues) {
  EXPECT_FALSE(Variance({1.0}).ok());
}

TEST(StatisticsTest, StdDevIsSqrtOfVariance) {
  auto sd = StdDev({1.0, 3.0});
  ASSERT_TRUE(sd.ok());
  EXPECT_NEAR(*sd, std::sqrt(2.0), 1e-12);
}

TEST(StatisticsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}).ValueOrDie(), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}).ValueOrDie(), 3.0);
  EXPECT_FALSE(Min({}).ok());
  EXPECT_FALSE(Max({}).ok());
}

TEST(StatisticsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}).ValueOrDie(), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}).ValueOrDie(), 2.5);
}

TEST(StatisticsTest, QuantileInterpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).ValueOrDie(), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25).ValueOrDie(), 2.5);
}

TEST(StatisticsTest, QuantileRejectsBadQ) {
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

TEST(StatisticsTest, MeanRelativeErrorMatchesEq15) {
  // (|9-10|/10 + |22-20|/20) / 2 = (0.1 + 0.1) / 2 = 0.1.
  auto mre = MeanRelativeError({9.0, 22.0}, {10.0, 20.0});
  ASSERT_TRUE(mre.ok());
  EXPECT_NEAR(*mre, 0.1, 1e-12);
}

TEST(StatisticsTest, MrePerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(MeanRelativeError({5.0, 7.0}, {5.0, 7.0}).ValueOrDie(),
                   0.0);
}

TEST(StatisticsTest, MreRejectsZeroActual) {
  EXPECT_FALSE(MeanRelativeError({1.0}, {0.0}).ok());
}

TEST(StatisticsTest, MreRejectsSizeMismatch) {
  EXPECT_FALSE(MeanRelativeError({1.0}, {1.0, 2.0}).ok());
}

TEST(StatisticsTest, RootMeanSquaredError) {
  auto rmse = RootMeanSquaredError({1.0, 2.0}, {2.0, 4.0});
  ASSERT_TRUE(rmse.ok());
  EXPECT_NEAR(*rmse, std::sqrt((1.0 + 4.0) / 2.0), 1e-12);
}

TEST(StatisticsTest, PearsonPerfectPositive) {
  auto r = PearsonCorrelation({1, 2, 3}, {2, 4, 6});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-12);
}

TEST(StatisticsTest, PearsonPerfectNegative) {
  auto r = PearsonCorrelation({1, 2, 3}, {6, 4, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, -1.0, 1e-12);
}

TEST(StatisticsTest, PearsonConstantInputFails) {
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  const std::vector<double> data = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : data) rs.Add(x);
  EXPECT_EQ(rs.count(), data.size());
  EXPECT_NEAR(rs.mean(), Mean(data).ValueOrDie(), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(data).ValueOrDie(), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
}

}  // namespace
}  // namespace midas
