#include "common/status.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing table").message(), "missing table");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("no such plan");
  EXPECT_EQ(s.ToString(), "NotFound: no such plan");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyPayload) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).ValueOrDie();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperatorAccessesMembers) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, ConstructedWithOkStatusBecomesInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  MIDAS_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesValue) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UseHalf(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

Status FailWhenNegative(int x) {
  MIDAS_RETURN_IF_ERROR(x < 0 ? Status::OutOfRange("neg") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(FailWhenNegative(1).ok());
  EXPECT_EQ(FailWhenNegative(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace midas
