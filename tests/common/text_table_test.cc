#include "common/text_table.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(0.1465, 3), "0.146");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(-1.25, 2), "-1.25");
}

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"Query", "DREAM"});
  t.AddRow({"12", "0.146"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Query"), std::string::npos);
  EXPECT_NE(out.find("DREAM"), std::string::npos);
  EXPECT_NE(out.find("0.146"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTableTest, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  const std::string out = t.ToString();
  // Three header separators -> four '|' per row.
  const std::string row_with_only = out.substr(out.find("only"));
  EXPECT_NE(out.find("| only"), std::string::npos);
}

TEST(TextTableTest, NumericRowHelperFormats) {
  TextTable t({"label", "x", "y"});
  t.AddRow("r1", {1.23456, 7.0}, 2);
  const std::string out = t.ToString();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("7.00"), std::string::npos);
}

TEST(TextTableTest, ColumnWidthAdaptsToLongCells) {
  TextTable t({"h"});
  t.AddRow({"a-very-long-cell-value"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("a-very-long-cell-value"), std::string::npos);
  // Header line must be at least as wide as the longest cell.
  const size_t first_newline = out.find('\n');
  EXPECT_GE(first_newline, std::string("a-very-long-cell-value").size());
}

TEST(TextTableTest, EmptyTableStillRendersHeader) {
  TextTable t({"alpha", "beta"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace midas
