#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> counter{0};
  std::mutex mutex;
  std::condition_variable done;
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return counter.load() == kTasks; });
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) pool.Submit([&] { counter.fetch_add(1); });
  }
  // Joining the workers must not drop queued tasks.
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, DefaultThreadCountAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  const size_t saved = ThreadPool::DefaultThreadCount();
  ThreadPool::SetDefaultThreadCount(3);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ThreadPool::SetDefaultThreadCount(saved);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    constexpr size_t kN = 1000;
    std::vector<int> visits(kN, 0);
    ParallelForOptions options;
    options.threads = threads;
    const Status st = ParallelFor(
        kN,
        [&](size_t i) {
          ++visits[i];  // disjoint slots, no synchronisation needed
          return Status::OK();
        },
        options);
    ASSERT_TRUE(st.ok()) << "threads=" << threads;
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(kN));
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i], 1);
  }
}

TEST(ParallelForTest, SlotWritesMatchSerialAtAnyThreadCount) {
  constexpr size_t kN = 257;  // deliberately not a multiple of the chunking
  std::vector<double> serial(kN);
  ParallelForOptions one;
  one.threads = 1;
  ASSERT_TRUE(ParallelFor(
                  kN,
                  [&](size_t i) {
                    serial[i] = static_cast<double>(i) * 1.5 + 1.0;
                    return Status::OK();
                  },
                  one)
                  .ok());
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<double> parallel(kN);
    ParallelForOptions options;
    options.threads = threads;
    ASSERT_TRUE(ParallelFor(
                    kN,
                    [&](size_t i) {
                      parallel[i] = static_cast<double>(i) * 1.5 + 1.0;
                      return Status::OK();
                    },
                    options)
                    .ok());
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  EXPECT_TRUE(ParallelFor(0, [](size_t) {
                return Status::Internal("never called");
              }).ok());
}

TEST(ParallelForTest, ReportsSmallestFailingIndex) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ParallelForOptions options;
    options.threads = threads;
    const Status st = ParallelFor(
        500,
        [&](size_t i) -> Status {
          if (i == 137) return Status::InvalidArgument("fail-137");
          if (i >= 300) return Status::Internal("fail-high");
          return Status::OK();
        },
        options);
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    // The serial loop would have stopped at 137; the parallel one must
    // report that same error even if a later chunk failed first in time.
    EXPECT_EQ(st.message(), "fail-137") << "threads=" << threads;
  }
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ParallelForOptions options;
    options.threads = threads;
    const Status st = ParallelFor(
        64,
        [](size_t i) -> Status {
          if (i == 10) throw std::runtime_error("boom");
          return Status::OK();
        },
        options);
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_EQ(st.code(), StatusCode::kInternal);
  }
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // Every outer chunk runs an inner ParallelFor against the same default
  // pool; caller participation must keep this from deadlocking even when
  // all workers are occupied by outer chunks.
  std::atomic<int> inner_total{0};
  ParallelForOptions outer;
  outer.threads = 4;
  const Status st = ParallelFor(
      8,
      [&](size_t) {
        ParallelForOptions inner;
        inner.threads = 4;
        return ParallelFor(
            16,
            [&](size_t) {
              inner_total.fetch_add(1, std::memory_order_relaxed);
              return Status::OK();
            },
            inner);
      },
      outer);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelForTest, ExplicitPoolIsUsed) {
  ThreadPool pool(2);
  std::vector<int> visits(64, 0);
  ParallelForOptions options;
  options.threads = 2;
  options.pool = &pool;
  ASSERT_TRUE(ParallelFor(
                  visits.size(),
                  [&](size_t i) {
                    ++visits[i];
                    return Status::OK();
                  },
                  options)
                  .ok());
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(MixSeedTest, StreamsAreDistinctAndDeterministic) {
  EXPECT_EQ(MixSeed(42, 0), MixSeed(42, 0));
  EXPECT_NE(MixSeed(42, 0), MixSeed(42, 1));
  EXPECT_NE(MixSeed(42, 0), MixSeed(43, 0));
  // Derived generators produce different sequences per stream.
  Rng a(MixSeed(7, 0));
  Rng b(MixSeed(7, 1));
  EXPECT_NE(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
}

}  // namespace
}  // namespace midas
