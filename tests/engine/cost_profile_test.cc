#include "engine/cost_profile.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(CostProfileTest, HivePaysLargeStartup) {
  const CostProfile hive = DefaultCostProfile(EngineKind::kHive);
  const CostProfile pg = DefaultCostProfile(EngineKind::kPostgres);
  const CostProfile spark = DefaultCostProfile(EngineKind::kSpark);
  EXPECT_GT(hive.startup_seconds, spark.startup_seconds);
  EXPECT_GT(spark.startup_seconds, pg.startup_seconds);
}

TEST(CostProfileTest, PostgresIsSingleNode) {
  EXPECT_FALSE(DefaultCostProfile(EngineKind::kPostgres).distributed);
  EXPECT_TRUE(DefaultCostProfile(EngineKind::kHive).distributed);
  EXPECT_TRUE(DefaultCostProfile(EngineKind::kSpark).distributed);
}

TEST(CostProfileTest, PostgresFastestPerTuple) {
  const CostProfile hive = DefaultCostProfile(EngineKind::kHive);
  const CostProfile pg = DefaultCostProfile(EngineKind::kPostgres);
  EXPECT_LT(pg.cpu_tuple_seconds, hive.cpu_tuple_seconds);
}

TEST(EffectiveParallelismTest, SingleNodeIsOne) {
  const CostProfile hive = DefaultCostProfile(EngineKind::kHive);
  EXPECT_DOUBLE_EQ(EffectiveParallelism(hive, 1), 1.0);
}

TEST(EffectiveParallelismTest, NonDistributedIgnoresNodes) {
  const CostProfile pg = DefaultCostProfile(EngineKind::kPostgres);
  EXPECT_DOUBLE_EQ(EffectiveParallelism(pg, 8), 1.0);
}

TEST(EffectiveParallelismTest, AmdahlSubLinearScaling) {
  CostProfile p;
  p.distributed = true;
  p.serial_fraction = 0.1;
  const double two = EffectiveParallelism(p, 2);
  const double eight = EffectiveParallelism(p, 8);
  EXPECT_GT(two, 1.0);
  EXPECT_LT(two, 2.0);
  EXPECT_GT(eight, two);
  EXPECT_LT(eight, 8.0);
}

TEST(EffectiveParallelismTest, ZeroSerialFractionIsLinear) {
  CostProfile p;
  p.distributed = true;
  p.serial_fraction = 0.0;
  EXPECT_DOUBLE_EQ(EffectiveParallelism(p, 8), 8.0);
}

TEST(EffectiveParallelismTest, MonotoneInNodes) {
  const CostProfile hive = DefaultCostProfile(EngineKind::kHive);
  double previous = 0.0;
  for (int n = 1; n <= 16; ++n) {
    const double par = EffectiveParallelism(hive, n);
    EXPECT_GT(par, previous);
    previous = par;
  }
}

}  // namespace
}  // namespace midas
