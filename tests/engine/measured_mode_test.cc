#include <gtest/gtest.h>

#include "engine/simulator.h"

namespace midas {
namespace {

// Measured cost mode: the simulator really runs plans on the columnar
// engine over deterministic synthetic data. The catalog here is NOT the
// TPC-H one — it also exercises the generator's external-catalog path the
// medical workloads use.

struct Environment {
  Federation federation;
  Catalog catalog;
  SiteId site_a = 0;
  SiteId site_b = 0;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = 8;
  env.site_a = env.federation.AddSite(a).value();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 8;
  env.site_b = env.federation.AddSite(b).value();
  NetworkLink wan;
  wan.bandwidth_mbps = 100.0;
  wan.latency_ms = 10.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network().SetSymmetricLink(env.site_a, env.site_b, wan)
      .CheckOK();

  TableDef big;
  big.name = "big";
  big.row_count = 100000;
  big.columns = {{"id", ColumnType::kInt, 8.0, 100000},
                 {"val", ColumnType::kDouble, 8.0, 50000},
                 {"payload", ColumnType::kString, 24.0, 100000}};
  env.catalog.AddTable(big).CheckOK();
  TableDef small;
  small.name = "small";
  small.row_count = 1000;
  small.columns = {{"id", ColumnType::kInt, 8.0, 1000}};
  env.catalog.AddTable(small).CheckOK();
  env.federation.PlaceTable("big", env.site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("small", env.site_b, EngineKind::kPostgres)
      .CheckOK();
  return env;
}

SimulatorOptions Measured(size_t batch_rows = 4096) {
  SimulatorOptions options;
  options.stochastic = false;
  options.variance.drift_amplitude = 0.0;
  options.variance.ar_sigma = 0.0;
  options.variance.noise_sigma = 0.0;
  options.cost_source = CostSource::kMeasured;
  options.measured.batch_rows = batch_rows;
  options.measured.max_rows_per_table = 20000;  // keep test runs quick
  return options;
}

QueryPlan ScanPlan(EngineKind engine, SiteId site) {
  auto scan = MakeScan("big");
  scan->site = site;
  scan->engine = engine;
  return QueryPlan(std::move(scan));
}

QueryPlan JoinPlan(const Environment& env, SiteId compute_site,
                   EngineKind compute_engine) {
  auto left = MakeScan("big");
  left->site = env.site_a;
  left->engine = EngineKind::kHive;
  auto right = MakeScan("small");
  right->site = env.site_b;
  right->engine = EngineKind::kPostgres;
  auto join = MakeJoin(std::move(left), std::move(right), "id", "id");
  join->site = compute_site;
  join->engine = compute_engine;
  return QueryPlan(std::move(join));
}

TEST(MeasuredModeTest, ExecuteProducesCostsAndDigest) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Measured());
  auto m = sim.Execute(ScanPlan(EngineKind::kHive, env.site_a));
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GT(m->seconds, 12.0);  // Hive startup still charged
  EXPECT_GT(m->dollars, 0.0);
  EXPECT_NE(m->result_digest, 0u);
}

TEST(MeasuredModeTest, AnalyticalModeLeavesDigestZero) {
  Environment env = MakeEnvironment();
  SimulatorOptions options = Measured();
  options.cost_source = CostSource::kAnalytical;
  ExecutionSimulator sim(&env.federation, &env.catalog, options);
  auto m = sim.Execute(ScanPlan(EngineKind::kHive, env.site_a));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->result_digest, 0u);
}

TEST(MeasuredModeTest, DigestIdenticalAcrossBatchSizesAndOracle) {
  Environment env = MakeEnvironment();
  const QueryPlan plan = JoinPlan(env, env.site_a, EngineKind::kHive);

  std::vector<uint64_t> digests;
  for (size_t batch_rows : {257u, 1024u, 4096u}) {
    ExecutionSimulator sim(&env.federation, &env.catalog,
                           Measured(batch_rows));
    auto m = sim.Execute(plan);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    digests.push_back(m->result_digest);
  }
  SimulatorOptions oracle_opts = Measured();
  oracle_opts.measured.use_row_oracle = true;
  ExecutionSimulator oracle(&env.federation, &env.catalog, oracle_opts);
  auto m = oracle.Execute(plan);
  ASSERT_TRUE(m.ok());
  digests.push_back(m->result_digest);

  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]);
  }
  EXPECT_NE(digests[0], 0u);
}

TEST(MeasuredModeTest, RelativeEngineBehaviourPreserved) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Measured());
  // Same physical work, throttled per engine profile: Hive pays 12 s
  // startup and a 100/60 scan slowdown, Postgres 0.05 s and 100/220.
  auto hive = sim.ExpectedCostAt(ScanPlan(EngineKind::kHive, env.site_a), 0);
  auto postgres =
      sim.ExpectedCostAt(ScanPlan(EngineKind::kPostgres, env.site_b), 0);
  ASSERT_TRUE(hive.ok());
  ASSERT_TRUE(postgres.ok());
  EXPECT_GT(hive->seconds, postgres->seconds);
  EXPECT_EQ(hive->result_digest, postgres->result_digest);  // same data
}

TEST(MeasuredModeTest, TransfersChargeMeasuredBytes) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Measured());
  const double to_a =
      sim.ExpectedCostAt(JoinPlan(env, env.site_a, EngineKind::kHive), 0)
          .value()
          .bytes_transferred;
  const double to_b =
      sim.ExpectedCostAt(JoinPlan(env, env.site_b, EngineKind::kPostgres), 0)
          .value()
          .bytes_transferred;
  EXPECT_GT(to_a, 0.0);   // small table travels B → A
  EXPECT_GT(to_b, to_a);  // shipping the big table costs more
}

TEST(MeasuredModeTest, TableCacheServesRepeatExecutions) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Measured());
  EXPECT_EQ(sim.table_cache(), nullptr);  // built lazily
  ASSERT_TRUE(sim.Execute(JoinPlan(env, env.site_a, EngineKind::kHive)).ok());
  ASSERT_TRUE(sim.Execute(JoinPlan(env, env.site_a, EngineKind::kHive)).ok());
  ASSERT_NE(sim.table_cache(), nullptr);
  const exec::TableCacheStats stats = sim.table_cache()->Stats();
  EXPECT_EQ(stats.misses, 2u);  // big + small, materialized once each
  EXPECT_GE(stats.hits, 2u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(MeasuredModeTest, SharedCachePoolsAcrossSimulators) {
  Environment env = MakeEnvironment();
  auto shared = std::make_shared<exec::TableCache>(512ull << 20);
  SimulatorOptions options = Measured();
  options.measured.shared_cache = shared;
  ExecutionSimulator sim1(&env.federation, &env.catalog, options);
  ExecutionSimulator sim2(&env.federation, &env.catalog, options);
  ASSERT_TRUE(sim1.Execute(ScanPlan(EngineKind::kHive, env.site_a)).ok());
  ASSERT_TRUE(sim2.Execute(ScanPlan(EngineKind::kHive, env.site_a)).ok());
  EXPECT_EQ(shared->Stats().misses, 1u);
  EXPECT_EQ(shared->Stats().hits, 1u);
}

TEST(MeasuredModeTest, ExecuteMeasuredExposesPerOperatorStats) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Measured());
  const QueryPlan plan = JoinPlan(env, env.site_a, EngineKind::kHive);
  auto result = sim.ExecuteMeasured(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().stats.size(), 3u);  // join, scan, scan
  // Pre-order: 0 = join, 1 = big scan, 2 = small scan.
  EXPECT_EQ(result.value().stats[1].output_rows, 20000u);
  EXPECT_EQ(result.value().stats[2].output_rows, 1000u);
  // The digest Execute reports is the engine's.
  auto m = sim.Execute(plan);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->result_digest, result.value().digest);
}

TEST(MeasuredModeTest, UnannotatedPlanStillRejected) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Measured());
  EXPECT_FALSE(sim.Execute(QueryPlan(MakeScan("big"))).ok());
}

}  // namespace
}  // namespace midas
