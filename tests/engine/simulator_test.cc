#include "engine/simulator.h"

#include <gtest/gtest.h>

#include "query/enumerator.h"

namespace midas {
namespace {

struct Environment {
  Federation federation;
  Catalog catalog;
  SiteId site_a = 0;
  SiteId site_b = 0;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = 8;
  env.site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 8;
  env.site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 100.0;
  wan.latency_ms = 10.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network().SetSymmetricLink(env.site_a, env.site_b, wan)
      .CheckOK();

  TableDef big;
  big.name = "big";
  big.row_count = 100000;
  big.columns = {{"id", ColumnType::kInt, 8.0, 100000},
                 {"payload", ColumnType::kString, 92.0, 100000}};
  env.catalog.AddTable(big).CheckOK();
  TableDef small;
  small.name = "small";
  small.row_count = 1000;
  small.columns = {{"id", ColumnType::kInt, 8.0, 1000}};
  env.catalog.AddTable(small).CheckOK();
  env.federation.PlaceTable("big", env.site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("small", env.site_b, EngineKind::kPostgres)
      .CheckOK();
  return env;
}

// A physical single-scan plan at site A on Hive.
QueryPlan ScanPlan(const Environment& env, int nodes = 1) {
  auto scan = MakeScan("big");
  scan->site = env.site_a;
  scan->engine = EngineKind::kHive;
  scan->num_nodes = nodes;
  return QueryPlan(std::move(scan));
}

// Join at the given site/engine, scans pinned to their placements.
QueryPlan JoinPlan(const Environment& env, SiteId compute_site,
                   EngineKind compute_engine) {
  auto left = MakeScan("big");
  left->site = env.site_a;
  left->engine = EngineKind::kHive;
  auto right = MakeScan("small");
  right->site = env.site_b;
  right->engine = EngineKind::kPostgres;
  auto join = MakeJoin(std::move(left), std::move(right), "id", "id");
  join->site = compute_site;
  join->engine = compute_engine;
  return QueryPlan(std::move(join));
}

SimulatorOptions Deterministic() {
  SimulatorOptions options;
  options.stochastic = false;
  options.variance.drift_amplitude = 0.0;
  options.variance.ar_sigma = 0.0;
  options.variance.noise_sigma = 0.0;
  return options;
}

TEST(SimulatorTest, ScanCostIncludesStartup) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  auto m = sim.Execute(ScanPlan(env));
  ASSERT_TRUE(m.ok());
  // Hive startup alone is 12 s.
  EXPECT_GT(m->seconds, 12.0);
  EXPECT_GT(m->dollars, 0.0);
  EXPECT_DOUBLE_EQ(m->bytes_transferred, 0.0);
}

TEST(SimulatorTest, MoreNodesReduceTime) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  const double t1 = sim.Execute(ScanPlan(env, 1)).ValueOrDie().seconds;
  const double t4 = sim.Execute(ScanPlan(env, 4)).ValueOrDie().seconds;
  EXPECT_LT(t4, t1);
}

TEST(SimulatorTest, RemoteJoinTransfersBytes) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  auto at_a = sim.Execute(JoinPlan(env, env.site_a, EngineKind::kHive));
  ASSERT_TRUE(at_a.ok());
  // The small table must travel from B to A.
  EXPECT_GT(at_a->bytes_transferred, 0.0);
}

TEST(SimulatorTest, TransferredVolumeDependsOnJoinSite) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  const double to_a =
      sim.Execute(JoinPlan(env, env.site_a, EngineKind::kHive))
          .ValueOrDie()
          .bytes_transferred;
  const double to_b =
      sim.Execute(JoinPlan(env, env.site_b, EngineKind::kPostgres))
          .ValueOrDie()
          .bytes_transferred;
  // Joining at B ships the big table; joining at A ships the small one.
  EXPECT_GT(to_b, to_a);
}

TEST(SimulatorTest, EgressChargedOnTransfers) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  auto local = sim.ExpectedCostAt(ScanPlan(env), 0);
  auto remote =
      sim.ExpectedCostAt(JoinPlan(env, env.site_b, EngineKind::kPostgres), 0);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(remote.ok());
  EXPECT_GT(remote->dollars, 0.0);
}

TEST(SimulatorTest, ClockAdvancesPerExecution) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  EXPECT_EQ(sim.now(), 0);
  auto m0 = sim.Execute(ScanPlan(env));
  ASSERT_TRUE(m0.ok());
  EXPECT_EQ(m0->timestamp, 0);
  EXPECT_EQ(sim.now(), 1);
  sim.AdvanceClock(10);
  EXPECT_EQ(sim.now(), 11);
}

TEST(SimulatorTest, DeterministicModeIsRepeatable) {
  Environment env = MakeEnvironment();
  ExecutionSimulator a(&env.federation, &env.catalog, Deterministic());
  ExecutionSimulator b(&env.federation, &env.catalog, Deterministic());
  EXPECT_DOUBLE_EQ(a.Execute(ScanPlan(env)).ValueOrDie().seconds,
                   b.Execute(ScanPlan(env)).ValueOrDie().seconds);
}

TEST(SimulatorTest, StochasticModeVariesAcrossExecutions) {
  Environment env = MakeEnvironment();
  SimulatorOptions options;  // default stochastic variance
  ExecutionSimulator sim(&env.federation, &env.catalog, options);
  const double t0 = sim.Execute(ScanPlan(env)).ValueOrDie().seconds;
  const double t1 = sim.Execute(ScanPlan(env)).ValueOrDie().seconds;
  EXPECT_NE(t0, t1);
}

TEST(SimulatorTest, ExpectedCostFollowsSeasonalLoad) {
  Environment env = MakeEnvironment();
  SimulatorOptions options;
  options.stochastic = false;
  options.variance.drift_amplitude = 0.5;
  options.variance.drift_period = 100.0;
  options.variance.noise_sigma = 0.0;
  options.variance.ar_sigma = 0.0;
  ExecutionSimulator sim(&env.federation, &env.catalog, options);
  const double peak = sim.ExpectedCostAt(ScanPlan(env), 25).ValueOrDie().seconds;
  const double trough =
      sim.ExpectedCostAt(ScanPlan(env), 75).ValueOrDie().seconds;
  EXPECT_NE(peak, trough);
}

TEST(SimulatorTest, UnannotatedPlanRejected) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  QueryPlan logical(MakeScan("big"));  // no site/engine
  EXPECT_FALSE(sim.Execute(logical).ok());
}

TEST(SimulatorTest, ProfileOverrideChangesCosts) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  const double before = sim.Execute(ScanPlan(env)).ValueOrDie().seconds;
  CostProfile instant = DefaultCostProfile(EngineKind::kHive);
  instant.startup_seconds = 0.0;
  sim.SetProfile(EngineKind::kHive, instant);
  const double after = sim.Execute(ScanPlan(env)).ValueOrDie().seconds;
  EXPECT_LT(after, before);
  EXPECT_NEAR(before - after, 12.0, 1e-6);
}

TEST(SimulatorTest, PostgresIgnoresExtraNodesForCompute) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  auto scan1 = MakeScan("small");
  scan1->site = env.site_b;
  scan1->engine = EngineKind::kPostgres;
  scan1->num_nodes = 1;
  auto scan4 = scan1->Clone();
  scan4->num_nodes = 4;
  const double t1 =
      sim.ExpectedCostAt(QueryPlan(std::move(scan1)), 0).ValueOrDie().seconds;
  const double t4 =
      sim.ExpectedCostAt(QueryPlan(std::move(scan4)), 0).ValueOrDie().seconds;
  EXPECT_DOUBLE_EQ(t1, t4);
}

}  // namespace
}  // namespace midas
