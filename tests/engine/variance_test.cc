#include "engine/variance.h"

#include <cmath>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(VarianceModelTest, ZeroOptionsAreStationary) {
  VarianceOptions options;
  options.noise_sigma = 0.0;
  options.drift_amplitude = 0.0;
  options.ar_sigma = 0.0;
  VarianceModel model(options, 1);
  for (int t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(model.LoadFactor(t), 1.0);
    EXPECT_DOUBLE_EQ(model.NoiseMultiplier(), 1.0);
  }
}

TEST(VarianceModelTest, SeasonalFactorFollowsSine) {
  VarianceOptions options;
  options.drift_amplitude = 0.5;
  options.drift_period = 100.0;
  options.drift_phase = 0.0;
  VarianceModel model(options, 1);
  EXPECT_NEAR(model.SeasonalFactor(0.0), 1.0, 1e-12);
  EXPECT_NEAR(model.SeasonalFactor(25.0), 1.5, 1e-12);   // sin peak
  EXPECT_NEAR(model.SeasonalFactor(75.0), 0.5, 1e-12);   // sin trough
  EXPECT_NEAR(model.SeasonalFactor(100.0), 1.0, 1e-9);   // full period
}

TEST(VarianceModelTest, PhaseShiftsSeason) {
  VarianceOptions a;
  a.drift_amplitude = 0.5;
  a.drift_period = 100.0;
  VarianceOptions b = a;
  b.drift_phase = 3.14159265358979;
  VarianceModel ma(a, 1), mb(b, 1);
  EXPECT_GT(ma.SeasonalFactor(25.0), 1.0);
  EXPECT_LT(mb.SeasonalFactor(25.0), 1.0);
}

TEST(VarianceModelTest, LoadFactorStaysPositive) {
  VarianceOptions options;
  options.drift_amplitude = 0.99;
  options.ar_sigma = 0.5;
  VarianceModel model(options, 3);
  for (int t = 0; t < 500; ++t) {
    EXPECT_GT(model.LoadFactor(t), 0.0);
  }
}

TEST(VarianceModelTest, NoiseIsMeanOne) {
  VarianceOptions options;
  options.noise_sigma = 0.2;
  VarianceModel model(options, 5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += model.NoiseMultiplier();
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(VarianceModelTest, NoiseAlwaysPositive) {
  VarianceOptions options;
  options.noise_sigma = 0.5;
  VarianceModel model(options, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(model.NoiseMultiplier(), 0.0);
  }
}

TEST(VarianceModelTest, DeterministicGivenSeed) {
  VarianceOptions options;  // defaults include AR noise
  VarianceModel a(options, 11), b(options, 11);
  for (int t = 0; t < 20; ++t) {
    EXPECT_DOUBLE_EQ(a.LoadFactor(t), b.LoadFactor(t));
  }
}

TEST(VarianceModelTest, ArProcessIsSmooth) {
  // Successive load factors should be correlated: big jumps are rare when
  // the seasonal component is flat.
  VarianceOptions options;
  options.drift_amplitude = 0.0;
  options.noise_sigma = 0.0;
  options.ar_coefficient = 0.95;
  options.ar_sigma = 0.05;
  VarianceModel model(options, 13);
  double previous = model.LoadFactor(0);
  double max_step = 0.0;
  for (int t = 1; t < 300; ++t) {
    const double current = model.LoadFactor(t);
    max_step = std::max(max_step, std::abs(current - previous));
    previous = current;
  }
  EXPECT_LT(max_step, 0.5);
}

TEST(VarianceModelTest, DefaultsModelDriftingCloud) {
  // The library defaults must include non-trivial drift (the paper's
  // premise) — guard against accidental neutering.
  VarianceOptions options;
  EXPECT_GT(options.drift_amplitude, 0.0);
  EXPECT_GT(options.ar_sigma, 0.0);
  EXPECT_GT(options.noise_sigma, 0.0);
}

}  // namespace
}  // namespace midas
