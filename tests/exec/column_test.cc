#include "exec/column.h"

#include <gtest/gtest.h>

#include "exec/batch.h"

namespace midas {
namespace exec {
namespace {

TEST(ColumnTest, TypedAppendAndRead) {
  Column ints(ColumnType::kInt);
  ints.AppendInt(7);
  ints.AppendInt(-3);
  EXPECT_EQ(ints.size(), 2u);
  EXPECT_EQ(ints.IntAt(0), 7);
  EXPECT_EQ(ints.IntAt(1), -3);
  EXPECT_EQ(ints.ByteSize(), 2 * sizeof(int64_t));

  Column doubles(ColumnType::kDouble);
  doubles.AppendDouble(1.5);
  EXPECT_DOUBLE_EQ(doubles.DoubleAt(0), 1.5);

  Column strings(ColumnType::kString);
  strings.AppendString("alpha");
  strings.AppendString("");
  strings.AppendString("beta");
  EXPECT_EQ(strings.size(), 3u);
  EXPECT_EQ(strings.StringAt(0), "alpha");
  EXPECT_EQ(strings.StringAt(1), "");
  EXPECT_EQ(strings.StringAt(2), "beta");
  // arena + (rows + 1) offsets
  EXPECT_EQ(strings.ByteSize(), 9 + 4 * sizeof(uint32_t));
}

TEST(ColumnTest, DateColumnsUseStringStorage) {
  Column dates(ColumnType::kDate);
  EXPECT_TRUE(dates.is_string_like());
  dates.AppendString("1995-03-17");
  EXPECT_EQ(dates.StringAt(0), "1995-03-17");
}

TEST(ExecSchemaTest, FindFieldResolvesFirstMatch) {
  ExecSchema schema;
  schema.Append(Field{"a", ColumnType::kInt, 10});
  schema.Append(Field{"b", ColumnType::kDouble, 5});
  schema.Append(Field{"a", ColumnType::kString, 2});  // post-join duplicate

  auto a = schema.FindField("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), 0u);
  auto b = schema.FindField("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 1u);
  EXPECT_FALSE(schema.FindField("missing").ok());
}

ColumnTable SmallTable() {
  ColumnTable t;
  t.schema.Append(Field{"k", ColumnType::kInt, 3});
  t.schema.Append(Field{"v", ColumnType::kDouble, 3});
  t.schema.Append(Field{"s", ColumnType::kString, 3});
  Column k(ColumnType::kInt), v(ColumnType::kDouble), s(ColumnType::kString);
  for (int i = 0; i < 3; ++i) {
    k.AppendInt(i);
    v.AppendDouble(i * 0.5);
    s.AppendString(i % 2 == 0 ? "even" : "odd");
  }
  t.columns.push_back(std::move(k));
  t.columns.push_back(std::move(v));
  t.columns.push_back(std::move(s));
  t.rows = 3;
  return t;
}

TEST(ResultDigestTest, EqualTablesDigestEqual) {
  EXPECT_EQ(ResultDigest(SmallTable()), ResultDigest(SmallTable()));
}

TEST(ResultDigestTest, ValueChangeChangesDigest) {
  ColumnTable a = SmallTable();
  ColumnTable b = SmallTable();
  Column v(ColumnType::kDouble);
  v.AppendDouble(0.0);
  v.AppendDouble(0.5);
  v.AppendDouble(1.0 + 1e-12);  // one ulp-ish nudge must be visible
  b.columns[1] = std::move(v);
  EXPECT_NE(ResultDigest(a), ResultDigest(b));
}

TEST(ResultDigestTest, RowOrderIsSignificant) {
  ColumnTable a = SmallTable();
  ColumnTable b = SmallTable();
  Column k(ColumnType::kInt);
  k.AppendInt(2);
  k.AppendInt(1);
  k.AppendInt(0);
  b.columns[0] = std::move(k);
  EXPECT_NE(ResultDigest(a), ResultDigest(b));
}

TEST(BatchTest, SliceViewsShareAbsoluteOffsets) {
  ColumnTable t = SmallTable();
  ColumnVector full = ColumnVector::Over(t.columns[2]);
  ColumnVector slice = ColumnVector::Slice(t.columns[2], 1);
  EXPECT_EQ(full.StringAt(1), slice.StringAt(0));
  EXPECT_EQ(slice.StringAt(1), "even");
}

TEST(BatchTest, PayloadBytesCountsActualData) {
  ColumnTable t = SmallTable();
  Batch batch;
  batch.rows = 3;
  for (const Column& c : t.columns) {
    batch.cols.push_back(ColumnVector::Over(c));
  }
  // 3 int cells + 3 double cells = 48; strings: 4+3+4 arena + 3 offsets.
  EXPECT_DOUBLE_EQ(batch.PayloadBytes(), 48.0 + 11.0 + 3 * sizeof(uint32_t));
}

}  // namespace
}  // namespace exec
}  // namespace midas
