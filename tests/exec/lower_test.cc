#include "exec/lower.h"

#include <gtest/gtest.h>

#include "exec/kernels.h"

namespace midas {
namespace exec {
namespace {

Catalog TestCatalog() {
  Catalog catalog;
  TableDef t;
  t.name = "t";
  t.row_count = 1000;
  t.columns = {
      ColumnDef{"id", ColumnType::kInt, 8.0, 1000},
      ColumnDef{"a", ColumnType::kInt, 8.0, 100},
      ColumnDef{"b", ColumnType::kDouble, 8.0, 500},
      ColumnDef{"s", ColumnType::kString, 16.0, 50},
      ColumnDef{"d", ColumnType::kDate, 10.0, 2000},
  };
  EXPECT_TRUE(catalog.AddTable(t).ok());
  TableDef u;
  u.name = "u";
  u.row_count = 100;
  u.columns = {
      ColumnDef{"k", ColumnType::kInt, 8.0, 100},
      ColumnDef{"w", ColumnType::kDouble, 8.0, 100},
  };
  EXPECT_TRUE(catalog.AddTable(u).ok());
  return catalog;
}

Predicate Pred(const std::string& column, double selectivity) {
  Predicate p;
  p.column = column;
  p.op = CompareOp::kLe;
  p.selectivity_override = selectivity;
  return p;
}

TEST(LowerTest, PreOrderPlanIndicesMatchNodes) {
  Catalog catalog = TestCatalog();
  // join(filter(scan t), scan u): pre-order = join, filter, scan t, scan u.
  auto left = MakeFilter(MakeScan("t"), {Pred("a", 0.5)});
  auto join = MakeJoin(std::move(left), MakeScan("u"), "a", "k");
  QueryPlan plan(std::move(join));

  auto lowered = LowerPlan(catalog, plan);
  ASSERT_TRUE(lowered.ok());
  const LoweredPlan& lp = lowered.value();
  EXPECT_EQ(lp.plan_nodes, 4u);
  EXPECT_EQ(lp.ops.size(), 4u);
  const LoweredOp& root = lp.ops[lp.root];
  EXPECT_EQ(root.kind, OperatorKind::kJoin);
  EXPECT_EQ(root.plan_index, 0u);
  EXPECT_EQ(lp.ops[root.children[0]].kind, OperatorKind::kFilter);
  EXPECT_EQ(lp.ops[root.children[0]].plan_index, 1u);
  const LoweredOp& scan_t = lp.ops[lp.ops[root.children[0]].children[0]];
  EXPECT_EQ(scan_t.plan_index, 2u);
  EXPECT_EQ(scan_t.table, "t");
  EXPECT_EQ(lp.ops[root.children[1]].plan_index, 3u);
  // Join schema concatenates left then right fields.
  EXPECT_EQ(root.schema.size(), 7u);
  EXPECT_EQ(root.schema.field(5).name, "k");
}

TEST(LowerTest, CompilesDeterministicThresholds) {
  Catalog catalog = TestCatalog();
  QueryPlan plan(MakeFilter(MakeScan("t"),
                            {Pred("a", 0.5), Pred("b", 0.25), Pred("s", 0.5)}));
  auto lowered = LowerPlan(catalog, plan);
  ASSERT_TRUE(lowered.ok());
  const LoweredOp& filter = lowered.value().ops.back();
  ASSERT_EQ(filter.predicates.size(), 3u);

  const CompiledPredicate& pa = filter.predicates[0];
  EXPECT_EQ(pa.type, ColumnType::kInt);
  EXPECT_EQ(pa.int_threshold, 50);  // 0.5 over [1, 100]
  EXPECT_TRUE(PredicatePassesInt(pa, 50));
  EXPECT_FALSE(PredicatePassesInt(pa, 51));

  const CompiledPredicate& pb = filter.predicates[1];
  EXPECT_EQ(pb.type, ColumnType::kDouble);
  EXPECT_DOUBLE_EQ(pb.double_threshold, 1.0 + 0.25 * 99999.0);

  const CompiledPredicate& ps = filter.predicates[2];
  EXPECT_EQ(ps.type, ColumnType::kString);
  EXPECT_EQ(ps.hash_threshold, uint64_t{1} << 63);
  // The hash test is a pure function of the value.
  EXPECT_EQ(PredicatePassesString(ps, "abc"),
            HashBytes("abc", 3) <= ps.hash_threshold);
}

TEST(LowerTest, DefaultSelectivitiesMirrorEstimator) {
  Catalog catalog = TestCatalog();
  Predicate eq;
  eq.column = "a";
  eq.op = CompareOp::kEq;  // 1/NDV = 0.01 over domain [1, 100]
  QueryPlan plan(MakeFilter(MakeScan("t"), {eq}));
  auto lowered = LowerPlan(catalog, plan);
  ASSERT_TRUE(lowered.ok());
  EXPECT_EQ(lowered.value().ops.back().predicates[0].int_threshold, 1);
}

TEST(LowerTest, ScanFractionAndRowCapCompose) {
  Catalog catalog = TestCatalog();
  {
    auto scan = MakeScan("t");
    scan->scan_fraction = 0.5;
    auto lowered = LowerPlan(catalog, QueryPlan(std::move(scan)));
    ASSERT_TRUE(lowered.ok());
    EXPECT_EQ(lowered.value().ops.back().scan_rows, 500u);
  }
  {
    auto scan = MakeScan("t");
    scan->scan_fraction = 0.5;
    LowerOptions options;
    options.max_rows_per_table = 300;  // cap first, then prune
    auto lowered = LowerPlan(catalog, QueryPlan(std::move(scan)), options);
    ASSERT_TRUE(lowered.ok());
    EXPECT_EQ(lowered.value().ops.back().scan_rows, 150u);
  }
}

TEST(LowerTest, AggregateSchemaAndKeySelection) {
  Catalog catalog = TestCatalog();
  QueryPlan plan(MakeAggregate(MakeScan("u"), 7));
  auto lowered = LowerPlan(catalog, plan);
  ASSERT_TRUE(lowered.ok());
  const LoweredOp& agg = lowered.value().ops.back();
  ASSERT_TRUE(agg.group_key.has_value());
  EXPECT_EQ(*agg.group_key, 0u);  // first kInt child column ("k")
  ASSERT_EQ(agg.sum_columns.size(), 1u);
  EXPECT_EQ(agg.sum_columns[0], 1u);  // "w"
  ASSERT_EQ(agg.schema.size(), 3u);
  EXPECT_EQ(agg.schema.field(0).name, "group");
  EXPECT_EQ(agg.schema.field(1).name, "count");
  EXPECT_EQ(agg.schema.field(2).name, "sum_w");
  EXPECT_EQ(agg.num_groups, 7u);
}

TEST(LowerTest, ProjectResolvesNamesInOrder) {
  Catalog catalog = TestCatalog();
  QueryPlan plan(MakeProject(MakeScan("t"), {"b", "id"}));
  auto lowered = LowerPlan(catalog, plan);
  ASSERT_TRUE(lowered.ok());
  const LoweredOp& project = lowered.value().ops.back();
  ASSERT_EQ(project.projection.size(), 2u);
  EXPECT_EQ(project.projection[0], 2u);
  EXPECT_EQ(project.projection[1], 0u);
  EXPECT_EQ(project.schema.field(0).name, "b");
}

TEST(LowerTest, RejectsMalformedPlans) {
  Catalog catalog = TestCatalog();
  EXPECT_FALSE(LowerPlan(catalog, QueryPlan(MakeScan("missing"))).ok());
  EXPECT_FALSE(
      LowerPlan(catalog,
                QueryPlan(MakeFilter(MakeScan("t"), {Pred("nope", 0.5)})))
          .ok());
  // Non-int join keys are rejected at lowering, never at runtime.
  auto join = MakeJoin(MakeScan("t"), MakeScan("u"), "s", "k");
  auto lowered = LowerPlan(catalog, QueryPlan(std::move(join)));
  ASSERT_FALSE(lowered.ok());
  EXPECT_EQ(lowered.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(LowerPlan(catalog, QueryPlan()).ok());
}

}  // namespace
}  // namespace exec
}  // namespace midas
