#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "exec/engine.h"
#include "exec/lower.h"

namespace midas {
namespace exec {
namespace {

// Golden tests: every plan runs on the vectorized engine at several awkward
// batch sizes AND on the row-at-a-time oracle; all executions must produce
// bit-identical output tables (not just equal digests).

constexpr size_t kBatchSizes[] = {1, 3, 7, 256, 4096};

class MapProvider : public TableProvider {
 public:
  void Add(const std::string& name, ColumnTable table) {
    tables_[name] = std::make_shared<const ColumnTable>(std::move(table));
  }
  StatusOr<std::shared_ptr<const ColumnTable>> GetTable(
      const std::string& name) override {
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound("no table " + name);
    return it->second;
  }

 private:
  std::unordered_map<std::string, std::shared_ptr<const ColumnTable>> tables_;
};

constexpr const char* kSampleWords[] = {"alpha", "beta", "gamma", "delta",
                                        "epsilon", "zeta", "eta", "theta"};

/// Builds a random table whose value domains match what predicate
/// compilation assumes for the catalog entry (ints uniform over [1, NDV],
/// doubles over [1, 100000] in cents).
ColumnTable RandomTable(const TableDef& def, uint64_t seed) {
  Rng rng(seed);
  ColumnTable out;
  out.rows = def.row_count;
  for (const ColumnDef& col : def.columns) {
    out.schema.Append(Field{col.name, col.type,
                            std::max<uint64_t>(1, col.distinct_values)});
    Column column(col.type);
    for (uint64_t i = 0; i < def.row_count; ++i) {
      switch (col.type) {
        case ColumnType::kInt:
          column.AppendInt(rng.UniformInt(
              1, static_cast<int64_t>(
                     std::max<uint64_t>(1, col.distinct_values))));
          break;
        case ColumnType::kDouble:
          column.AppendDouble(
              std::round(rng.Uniform(1.0, 100000.0) * 100.0) / 100.0);
          break;
        default:
          column.AppendString(kSampleWords[rng.Index(8)]);
          break;
      }
    }
    out.columns.push_back(std::move(column));
  }
  return out;
}

struct Fixture {
  Catalog catalog;
  MapProvider provider;

  Fixture() {
    TableDef t;
    t.name = "t";
    t.row_count = 997;  // prime: never divides a batch size evenly
    t.columns = {
        ColumnDef{"a", ColumnType::kInt, 8.0, 50},
        ColumnDef{"b", ColumnType::kDouble, 8.0, 200},
        ColumnDef{"s", ColumnType::kString, 8.0, 8},
    };
    TableDef u;
    u.name = "u";
    u.row_count = 131;
    u.columns = {
        ColumnDef{"k", ColumnType::kInt, 8.0, 50},
        ColumnDef{"w", ColumnType::kDouble, 8.0, 100},
    };
    TableDef empty;
    empty.name = "empty";
    empty.row_count = 0;
    empty.columns = {ColumnDef{"e", ColumnType::kInt, 8.0, 10}};
    EXPECT_TRUE(catalog.AddTable(t).ok());
    EXPECT_TRUE(catalog.AddTable(u).ok());
    EXPECT_TRUE(catalog.AddTable(empty).ok());
    provider.Add("t", RandomTable(t, 7));
    provider.Add("u", RandomTable(u, 11));
    provider.Add("empty", RandomTable(empty, 13));
  }

  /// Runs `plan` on the oracle and on the vectorized engine at every batch
  /// size; asserts all outputs are bit-identical and returns the oracle's.
  ColumnTable CheckAllWays(const QueryPlan& plan) {
    auto lowered = LowerPlan(catalog, plan);
    EXPECT_TRUE(lowered.ok()) << lowered.status().ToString();
    const LoweredPlan& lp = lowered.value();

    ExecOptions oracle_opts;
    oracle_opts.engine = EngineKindExec::kRowOracle;
    auto oracle = ExecutePlan(lp, &provider, oracle_opts);
    EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
    const ExecResult& golden = oracle.value();

    for (size_t batch_rows : kBatchSizes) {
      ExecOptions opts;
      opts.engine = EngineKindExec::kVectorized;
      opts.batch_rows = batch_rows;
      auto got = ExecutePlan(lp, &provider, opts);
      EXPECT_TRUE(got.ok()) << got.status().ToString();
      const ExecResult& result = got.value();
      EXPECT_EQ(result.output.rows, golden.output.rows)
          << "batch_rows=" << batch_rows;
      EXPECT_TRUE(result.output == golden.output)
          << "vectorized output differs from oracle at batch_rows="
          << batch_rows;
      EXPECT_EQ(result.digest, golden.digest);
    }
    return golden.output;
  }
};

Predicate Pred(const std::string& column, double selectivity) {
  Predicate p;
  p.column = column;
  p.op = CompareOp::kLe;
  p.selectivity_override = selectivity;
  return p;
}

TEST(OperatorGoldenTest, PlainScan) {
  Fixture fx;
  ColumnTable out = fx.CheckAllWays(QueryPlan(MakeScan("t")));
  EXPECT_EQ(out.rows, 997u);
}

TEST(OperatorGoldenTest, ScanFractionPrunesRows) {
  Fixture fx;
  auto scan = MakeScan("t");
  scan->scan_fraction = 0.37;
  ColumnTable out = fx.CheckAllWays(QueryPlan(std::move(scan)));
  EXPECT_EQ(out.rows, 369u);  // round(0.37 * 997)
}

TEST(OperatorGoldenTest, FilterAcrossSelectivities) {
  Fixture fx;
  for (double s : {0.0, 0.1, 0.33, 0.5, 0.9, 1.0}) {
    ColumnTable out =
        fx.CheckAllWays(QueryPlan(MakeFilter(MakeScan("t"), {Pred("a", s)})));
    if (s == 0.0) { EXPECT_EQ(out.rows, 0u); }
    if (s == 1.0) { EXPECT_EQ(out.rows, 997u); }
  }
}

TEST(OperatorGoldenTest, ConjunctiveFilterMixedTypes) {
  Fixture fx;
  fx.CheckAllWays(QueryPlan(MakeFilter(
      MakeScan("t"), {Pred("a", 0.6), Pred("b", 0.5), Pred("s", 0.5)})));
}

TEST(OperatorGoldenTest, StringHashFilter) {
  Fixture fx;
  ColumnTable out =
      fx.CheckAllWays(QueryPlan(MakeFilter(MakeScan("t"), {Pred("s", 0.4)})));
  EXPECT_GT(out.rows, 0u);
  EXPECT_LT(out.rows, 997u);
}

TEST(OperatorGoldenTest, Project) {
  Fixture fx;
  ColumnTable out =
      fx.CheckAllWays(QueryPlan(MakeProject(MakeScan("t"), {"b", "a"})));
  EXPECT_EQ(out.columns.size(), 2u);
  EXPECT_EQ(out.schema.field(0).name, "b");
}

TEST(OperatorGoldenTest, HashJoinManyToMany) {
  Fixture fx;
  // a and k both range over [1, 50]: plenty of duplicate matches on both
  // sides, exercising the ordered multi-match chains.
  ColumnTable out = fx.CheckAllWays(
      QueryPlan(MakeJoin(MakeScan("t"), MakeScan("u"), "a", "k")));
  EXPECT_GT(out.rows, 997u);
}

TEST(OperatorGoldenTest, JoinThenAggregate) {
  Fixture fx;
  auto join = MakeJoin(MakeFilter(MakeScan("t"), {Pred("a", 0.5)}),
                       MakeScan("u"), "a", "k");
  fx.CheckAllWays(QueryPlan(MakeAggregate(std::move(join), 13)));
}

TEST(OperatorGoldenTest, AggregateSingleGroup) {
  Fixture fx;
  ColumnTable out = fx.CheckAllWays(QueryPlan(MakeAggregate(MakeScan("u"), 1)));
  EXPECT_EQ(out.rows, 1u);
  EXPECT_EQ(out.columns[1].IntAt(0), 131);  // count == table cardinality
}

TEST(OperatorGoldenTest, SortOnDuplicateKeys) {
  Fixture fx;
  // Sort key "a" has only 50 distinct values over 997 rows — stability
  // across equal keys is what keeps batch sizes bit-identical.
  ColumnTable out = fx.CheckAllWays(QueryPlan(MakeSort(MakeScan("t"))));
  for (uint64_t i = 1; i < out.rows; ++i) {
    EXPECT_LE(out.columns[0].IntAt(i - 1), out.columns[0].IntAt(i));
  }
}

TEST(OperatorGoldenTest, FullPipeline) {
  Fixture fx;
  auto join = MakeJoin(MakeFilter(MakeScan("t"), {Pred("a", 0.7)}),
                       MakeFilter(MakeScan("u"), {Pred("w", 0.8)}), "a", "k");
  auto plan = MakeSort(MakeAggregate(std::move(join), 5));
  fx.CheckAllWays(QueryPlan(std::move(plan)));
}

TEST(OperatorGoldenTest, EmptyInputsEverywhere) {
  Fixture fx;
  fx.CheckAllWays(QueryPlan(MakeScan("empty")));
  fx.CheckAllWays(QueryPlan(MakeAggregate(MakeScan("empty"), 4)));
  fx.CheckAllWays(QueryPlan(MakeSort(MakeScan("empty"))));
  fx.CheckAllWays(
      QueryPlan(MakeJoin(MakeScan("empty"), MakeScan("u"), "e", "k")));
  fx.CheckAllWays(
      QueryPlan(MakeJoin(MakeScan("u"), MakeScan("empty"), "k", "e")));
}

TEST(OperatorGoldenTest, RandomizedPlans) {
  Fixture fx;
  Rng rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    auto node = MakeFilter(
        MakeScan("t"),
        {Pred("a", rng.Uniform(0.0, 1.0)), Pred("b", rng.Uniform(0.0, 1.0))});
    std::unique_ptr<PlanNode> tree;
    switch (rng.Index(3)) {
      case 0:
        tree = MakeAggregate(std::move(node), 1 + rng.Index(20));
        break;
      case 1:
        tree = MakeSort(std::move(node));
        break;
      default:
        tree = MakeJoin(std::move(node), MakeScan("u"), "a", "k");
        break;
    }
    fx.CheckAllWays(QueryPlan(std::move(tree)));
  }
}

TEST(OperatorStatsTest, VectorizedStatsLandOnPlanIndices) {
  Fixture fx;
  auto plan =
      QueryPlan(MakeAggregate(MakeFilter(MakeScan("t"), {Pred("a", 0.5)}), 4));
  auto lowered = LowerPlan(fx.catalog, plan);
  ASSERT_TRUE(lowered.ok());
  auto got = ExecutePlan(lowered.value(), &fx.provider, ExecOptions());
  ASSERT_TRUE(got.ok());
  const ExecResult& result = got.value();
  ASSERT_EQ(result.stats.size(), 3u);
  // Pre-order: 0 = aggregate, 1 = filter, 2 = scan.
  EXPECT_EQ(result.stats[2].output_rows, 997u);
  EXPECT_GT(result.stats[1].output_rows, 0u);
  EXPECT_LT(result.stats[1].output_rows, 997u);
  EXPECT_EQ(result.stats[0].output_rows, result.output.rows);
  EXPECT_GT(result.stats[2].output_bytes, 0.0);
}

}  // namespace
}  // namespace exec
}  // namespace midas
