#include "exec/table_cache.h"

#include <gtest/gtest.h>

namespace midas {
namespace exec {
namespace {

ColumnTable TableOfBytes(size_t rows) {
  ColumnTable t;
  t.schema.Append(Field{"x", ColumnType::kInt, 1});
  Column c(ColumnType::kInt);
  for (size_t i = 0; i < rows; ++i) c.AppendInt(static_cast<int64_t>(i));
  t.columns.push_back(std::move(c));
  t.rows = rows;
  return t;
}

TableCacheKey Key(const std::string& name) {
  TableCacheKey key;
  key.table = name;
  key.seed = 1;
  return key;
}

TEST(TableCacheTest, MissMaterializesThenHits) {
  TableCache cache(1 << 20);
  int calls = 0;
  auto materialize = [&]() -> StatusOr<ColumnTable> {
    ++calls;
    return TableOfBytes(10);
  };
  auto first = cache.GetOrMaterialize(Key("t"), materialize);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrMaterialize(Key("t"), materialize);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first.value().get(), second.value().get());
  const TableCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes, 10 * sizeof(int64_t));
}

TEST(TableCacheTest, DistinctKeysAreDistinctEntries) {
  TableCache cache(1 << 20);
  auto make = []() -> StatusOr<ColumnTable> { return TableOfBytes(4); };
  TableCacheKey a = Key("t");
  TableCacheKey b = Key("t");
  b.rows = 99;  // different row cap → different table
  TableCacheKey c = Key("t");
  c.seed = 2;
  ASSERT_TRUE(cache.GetOrMaterialize(a, make).ok());
  ASSERT_TRUE(cache.GetOrMaterialize(b, make).ok());
  ASSERT_TRUE(cache.GetOrMaterialize(c, make).ok());
  EXPECT_EQ(cache.Stats().misses, 3u);
  EXPECT_EQ(cache.Stats().entries, 3u);
}

TEST(TableCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  // Each table is 80 bytes; budget fits two.
  TableCache cache(160);
  auto make = []() -> StatusOr<ColumnTable> { return TableOfBytes(10); };
  ASSERT_TRUE(cache.GetOrMaterialize(Key("a"), make).ok());
  ASSERT_TRUE(cache.GetOrMaterialize(Key("b"), make).ok());
  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE(cache.GetOrMaterialize(Key("a"), make).ok());
  ASSERT_TRUE(cache.GetOrMaterialize(Key("c"), make).ok());
  const TableCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.resident_bytes, 160u);
  // "b" was evicted: fetching it again is a miss...
  ASSERT_TRUE(cache.GetOrMaterialize(Key("b"), make).ok());
  EXPECT_EQ(cache.Stats().misses, 4u);
  // ...while "a" survived the first eviction round.
  const uint64_t hits_before = cache.Stats().hits;
  ASSERT_TRUE(cache.GetOrMaterialize(Key("c"), make).ok());
  EXPECT_EQ(cache.Stats().hits, hits_before + 1);
}

TEST(TableCacheTest, OversizedEntryIsRetained) {
  TableCache cache(16);  // below even one table's size
  auto make = []() -> StatusOr<ColumnTable> { return TableOfBytes(10); };
  auto got = cache.GetOrMaterialize(Key("big"), make);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(cache.Stats().entries, 1u);  // never evict the newest entry
  auto again = cache.GetOrMaterialize(Key("big"), make);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(TableCacheTest, MaterializerErrorPassesThroughAndCachesNothing) {
  TableCache cache(1 << 20);
  auto fail = []() -> StatusOr<ColumnTable> {
    return Status::Internal("generator exploded");
  };
  auto got = cache.GetOrMaterialize(Key("t"), fail);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(cache.Stats().entries, 0u);
  // A later successful materialization works.
  auto make = []() -> StatusOr<ColumnTable> { return TableOfBytes(2); };
  EXPECT_TRUE(cache.GetOrMaterialize(Key("t"), make).ok());
}

TEST(TableCacheTest, EvictionKeepsInFlightTablesAlive) {
  TableCache cache(100);
  auto make = []() -> StatusOr<ColumnTable> { return TableOfBytes(10); };
  auto held = cache.GetOrMaterialize(Key("a"), make);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(cache.GetOrMaterialize(Key("b"), make).ok());  // evicts "a"
  EXPECT_EQ(cache.Stats().evictions, 1u);
  // The shared_ptr we still hold reads fine after eviction.
  EXPECT_EQ(held.value()->columns[0].IntAt(9), 9);
}

}  // namespace
}  // namespace exec
}  // namespace midas
