#include "federation/engine_kind.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(EngineKindTest, NamesRoundTrip) {
  for (EngineKind kind :
       {EngineKind::kHive, EngineKind::kPostgres, EngineKind::kSpark}) {
    auto parsed = EngineKindFromName(EngineKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(EngineKindTest, KnownNames) {
  EXPECT_EQ(EngineKindName(EngineKind::kHive), "Hive");
  EXPECT_EQ(EngineKindName(EngineKind::kPostgres), "PostgreSQL");
  EXPECT_EQ(EngineKindName(EngineKind::kSpark), "Spark");
}

TEST(EngineKindTest, UnknownNameFails) {
  EXPECT_FALSE(EngineKindFromName("MySQL").ok());
}

TEST(EngineKindTest, CountMatchesEnum) {
  EXPECT_EQ(kNumEngineKinds, 3);
}

}  // namespace
}  // namespace midas
