#include "federation/federation.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

SiteConfig MakeSiteConfig(const std::string& name, EngineKind engine) {
  SiteConfig config;
  config.name = name;
  config.engines = {engine};
  config.node_type = {ProviderKind::kAmazon, "a1.large", 2, 4.0, 0.0, 0.0098};
  return config;
}

TEST(FederationTest, AddSiteAssignsSequentialIds) {
  Federation fed;
  auto a = fed.AddSite(MakeSiteConfig("a", EngineKind::kHive));
  auto b = fed.AddSite(MakeSiteConfig("b", EngineKind::kPostgres));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(fed.num_sites(), 2u);
}

TEST(FederationTest, DuplicateSiteNameRejected) {
  Federation fed;
  ASSERT_TRUE(fed.AddSite(MakeSiteConfig("a", EngineKind::kHive)).ok());
  EXPECT_FALSE(fed.AddSite(MakeSiteConfig("a", EngineKind::kSpark)).ok());
}

TEST(FederationTest, AddSiteResizesNetwork) {
  Federation fed;
  fed.AddSite(MakeSiteConfig("a", EngineKind::kHive)).ValueOrDie();
  fed.AddSite(MakeSiteConfig("b", EngineKind::kSpark)).ValueOrDie();
  EXPECT_EQ(fed.network().num_sites(), 2u);
}

TEST(FederationTest, SiteLookup) {
  Federation fed;
  const SiteId id =
      fed.AddSite(MakeSiteConfig("alpha", EngineKind::kHive)).ValueOrDie();
  auto site = fed.site(id);
  ASSERT_TRUE(site.ok());
  EXPECT_EQ((*site)->name(), "alpha");
  EXPECT_FALSE(fed.site(99).ok());
}

TEST(FederationTest, FindSiteByName) {
  Federation fed;
  fed.AddSite(MakeSiteConfig("alpha", EngineKind::kHive)).ValueOrDie();
  EXPECT_TRUE(fed.FindSiteByName("alpha").ok());
  EXPECT_FALSE(fed.FindSiteByName("beta").ok());
}

TEST(FederationTest, PlaceTableRequiresHostedEngine) {
  Federation fed;
  const SiteId a =
      fed.AddSite(MakeSiteConfig("a", EngineKind::kHive)).ValueOrDie();
  EXPECT_TRUE(fed.PlaceTable("t", a, EngineKind::kHive).ok());
  EXPECT_FALSE(fed.PlaceTable("u", a, EngineKind::kPostgres).ok());
}

TEST(FederationTest, TablePlacementRoundTrip) {
  Federation fed;
  const SiteId a =
      fed.AddSite(MakeSiteConfig("a", EngineKind::kHive)).ValueOrDie();
  ASSERT_TRUE(fed.PlaceTable("patients", a, EngineKind::kHive).ok());
  auto placement = fed.TablePlacement("patients");
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->site, a);
  EXPECT_EQ(placement->engine, EngineKind::kHive);
  EXPECT_FALSE(fed.TablePlacement("unknown").ok());
}

TEST(FederationTest, SitesWithEngine) {
  Federation fed;
  fed.AddSite(MakeSiteConfig("a", EngineKind::kHive)).ValueOrDie();
  fed.AddSite(MakeSiteConfig("b", EngineKind::kPostgres)).ValueOrDie();
  fed.AddSite(MakeSiteConfig("c", EngineKind::kHive)).ValueOrDie();
  EXPECT_EQ(fed.SitesWithEngine(EngineKind::kHive).size(), 2u);
  EXPECT_EQ(fed.SitesWithEngine(EngineKind::kPostgres).size(), 1u);
  EXPECT_TRUE(fed.SitesWithEngine(EngineKind::kSpark).empty());
}

TEST(FederationTest, PaperFederationShape) {
  Federation fed = Federation::PaperFederation();
  EXPECT_EQ(fed.num_sites(), 2u);
  const SiteId a = fed.FindSiteByName("cloud-A").ValueOrDie();
  const SiteId b = fed.FindSiteByName("cloud-B").ValueOrDie();
  EXPECT_TRUE(fed.site(a).ValueOrDie()->HostsEngine(EngineKind::kHive));
  EXPECT_TRUE(fed.site(a).ValueOrDie()->HostsEngine(EngineKind::kSpark));
  EXPECT_TRUE(fed.site(b).ValueOrDie()->HostsEngine(EngineKind::kPostgres));
  // WAN link is priced.
  EXPECT_GT(fed.network().Link(a, b).ValueOrDie().egress_price_per_gib, 0.0);
  EXPECT_GT(fed.network().Link(b, a).ValueOrDie().egress_price_per_gib, 0.0);
}

TEST(FederationTest, PaperPrivateCloudShape) {
  Federation fed = Federation::PaperPrivateCloud();
  EXPECT_EQ(fed.num_sites(), 1u);
  const CloudSite* site = fed.site(0).ValueOrDie();
  // §4.1: three nodes with 4 CPUs and 8 GiB each, all three engines.
  EXPECT_EQ(site->max_nodes(), 3);
  EXPECT_EQ(site->node_type().vcpu, 4);
  EXPECT_DOUBLE_EQ(site->node_type().memory_gib, 8.0);
  EXPECT_TRUE(site->HostsEngine(EngineKind::kHive));
  EXPECT_TRUE(site->HostsEngine(EngineKind::kPostgres));
  EXPECT_TRUE(site->HostsEngine(EngineKind::kSpark));
}

TEST(FederationTest, ThreeCloudFederationShape) {
  Federation fed = Federation::ThreeCloudFederation();
  EXPECT_EQ(fed.num_sites(), 3u);
  const SiteId a = fed.FindSiteByName("cloud-A").ValueOrDie();
  const SiteId b = fed.FindSiteByName("cloud-B").ValueOrDie();
  const SiteId c = fed.FindSiteByName("cloud-C").ValueOrDie();
  EXPECT_EQ(fed.site(c).ValueOrDie()->provider(), ProviderKind::kGoogle);
  EXPECT_TRUE(fed.site(c).ValueOrDie()->HostsEngine(EngineKind::kSpark));
  // Growing the federation must not have wiped the A<->B links.
  EXPECT_GT(fed.network().Link(a, b).ValueOrDie().egress_price_per_gib, 0.0);
  EXPECT_GT(fed.network().Link(b, a).ValueOrDie().egress_price_per_gib, 0.0);
  // The new provider's premium egress is the most expensive.
  EXPECT_GT(fed.network().Link(c, a).ValueOrDie().egress_price_per_gib,
            fed.network().Link(a, c).ValueOrDie().egress_price_per_gib);
}

TEST(InstanceCatalogTest, ExtendedCatalogAddsGoogle) {
  const InstanceCatalog catalog = InstanceCatalog::ExtendedThreeProviders();
  EXPECT_EQ(catalog.size(), 16u);
  EXPECT_EQ(catalog.ByProvider(ProviderKind::kGoogle).size(), 5u);
  // Table 1 rows are untouched.
  EXPECT_DOUBLE_EQ(catalog.Find("a1.medium").ValueOrDie().price_per_hour,
                   0.0049);
  EXPECT_TRUE(catalog.Find("e2-medium").ok());
}

}  // namespace
}  // namespace midas
