#include "federation/instance.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(InstanceCatalogTest, PaperTable1HasElevenRows) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  EXPECT_EQ(catalog.size(), 11u);
  EXPECT_EQ(catalog.ByProvider(ProviderKind::kAmazon).size(), 5u);
  EXPECT_EQ(catalog.ByProvider(ProviderKind::kMicrosoft).size(), 6u);
}

TEST(InstanceCatalogTest, PaperPricesMatchTable1) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  EXPECT_DOUBLE_EQ(catalog.Find("a1.medium").ValueOrDie().price_per_hour,
                   0.0049);
  EXPECT_DOUBLE_EQ(catalog.Find("a1.4xlarge").ValueOrDie().price_per_hour,
                   0.0788);
  EXPECT_DOUBLE_EQ(catalog.Find("B1S").ValueOrDie().price_per_hour, 0.011);
  EXPECT_DOUBLE_EQ(catalog.Find("B8MS").ValueOrDie().price_per_hour, 0.333);
}

TEST(InstanceCatalogTest, AmazonShapesAreEbsOnly) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  for (const InstanceType& t : catalog.ByProvider(ProviderKind::kAmazon)) {
    EXPECT_DOUBLE_EQ(t.storage_gib, 0.0) << t.name;
  }
}

TEST(InstanceCatalogTest, MicrosoftShapesBundleStorage) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  for (const InstanceType& t : catalog.ByProvider(ProviderKind::kMicrosoft)) {
    EXPECT_GT(t.storage_gib, 0.0) << t.name;
  }
}

TEST(InstanceCatalogTest, PaperSpecsMatchTable1) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  const InstanceType xl = catalog.Find("a1.xlarge").ValueOrDie();
  EXPECT_EQ(xl.vcpu, 4);
  EXPECT_DOUBLE_EQ(xl.memory_gib, 8.0);
  const InstanceType b2ms = catalog.Find("B2MS").ValueOrDie();
  EXPECT_EQ(b2ms.vcpu, 2);
  EXPECT_DOUBLE_EQ(b2ms.memory_gib, 8.0);
  EXPECT_DOUBLE_EQ(b2ms.storage_gib, 16.0);
}

TEST(InstanceCatalogTest, FindUnknownFails) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  EXPECT_FALSE(catalog.Find("m5.large").ok());
}

TEST(InstanceCatalogTest, CheapestSatisfyingPicksGlobalMinimum) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  // 2 vCPU, 4 GiB: a1.large ($0.0098) beats B2S ($0.042).
  auto pick = catalog.CheapestSatisfying(2, 4.0);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->name, "a1.large");
}

TEST(InstanceCatalogTest, CheapestSatisfyingRespectsProviderFilter) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  auto pick = catalog.CheapestSatisfying(2, 4.0, ProviderKind::kMicrosoft);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->name, "B2S");
}

TEST(InstanceCatalogTest, CheapestSatisfyingUnsatisfiableFails) {
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  EXPECT_FALSE(catalog.CheapestSatisfying(1000, 1.0).ok());
}

TEST(InstanceCatalogTest, PaperMonetaryObservation) {
  // §2.2: Amazon instances are cheaper per hour than Microsoft at similar
  // shapes — compare a1.large (2 vCPU, 4 GiB) with B2S (2 vCPU, 4 GiB).
  const InstanceCatalog catalog = InstanceCatalog::PaperTable1();
  EXPECT_LT(catalog.Find("a1.large").ValueOrDie().price_per_hour,
            catalog.Find("B2S").ValueOrDie().price_per_hour);
}

TEST(ProviderKindTest, Names) {
  EXPECT_EQ(ProviderKindName(ProviderKind::kAmazon), "Amazon");
  EXPECT_EQ(ProviderKindName(ProviderKind::kMicrosoft), "Microsoft");
  EXPECT_EQ(ProviderKindName(ProviderKind::kGoogle), "Google");
  EXPECT_EQ(ProviderKindName(ProviderKind::kPrivate), "Private");
}

}  // namespace
}  // namespace midas
