#include "federation/network.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(NetworkModelTest, DefaultLinkIsFastAndFree) {
  NetworkModel net(2);
  auto link = net.Link(0, 1);
  ASSERT_TRUE(link.ok());
  EXPECT_DOUBLE_EQ(link->egress_price_per_gib, 0.0);
  EXPECT_GT(link->bandwidth_mbps, 0.0);
}

TEST(NetworkModelTest, SetAndGetDirectedLink) {
  NetworkModel net(2);
  NetworkLink link;
  link.bandwidth_mbps = 100.0;
  link.latency_ms = 40.0;
  link.egress_price_per_gib = 0.09;
  ASSERT_TRUE(net.SetLink(0, 1, link).ok());
  EXPECT_DOUBLE_EQ(net.Link(0, 1).ValueOrDie().bandwidth_mbps, 100.0);
  // Reverse direction keeps its default.
  EXPECT_NE(net.Link(1, 0).ValueOrDie().bandwidth_mbps, 100.0);
}

TEST(NetworkModelTest, SymmetricLinkSetsBothDirections) {
  NetworkModel net(2);
  NetworkLink link;
  link.bandwidth_mbps = 250.0;
  ASSERT_TRUE(net.SetSymmetricLink(0, 1, link).ok());
  EXPECT_DOUBLE_EQ(net.Link(0, 1).ValueOrDie().bandwidth_mbps, 250.0);
  EXPECT_DOUBLE_EQ(net.Link(1, 0).ValueOrDie().bandwidth_mbps, 250.0);
}

TEST(NetworkModelTest, RejectsBadSiteIds) {
  NetworkModel net(2);
  EXPECT_FALSE(net.SetLink(0, 2, NetworkLink{}).ok());
  EXPECT_FALSE(net.Link(3, 0).ok());
}

TEST(NetworkModelTest, RejectsNonPositiveBandwidth) {
  NetworkModel net(2);
  NetworkLink link;
  link.bandwidth_mbps = 0.0;
  EXPECT_FALSE(net.SetLink(0, 1, link).ok());
}

TEST(NetworkModelTest, IntraSiteTransferIsFree) {
  NetworkModel net(2);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(1, 1, 1e9).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(net.TransferCost(1, 1, 1e9).ValueOrDie(), 0.0);
}

TEST(NetworkModelTest, TransferSecondsCombinesLatencyAndBandwidth) {
  NetworkModel net(2);
  NetworkLink link;
  link.bandwidth_mbps = 100.0;  // 100e6 bits/s
  link.latency_ms = 40.0;
  ASSERT_TRUE(net.SetLink(0, 1, link).ok());
  // 10^8 bytes = 8*10^8 bits over 10^8 bits/s = 8 s, + 0.04 s latency.
  auto seconds = net.TransferSeconds(0, 1, 1e8);
  ASSERT_TRUE(seconds.ok());
  EXPECT_NEAR(*seconds, 8.04, 1e-9);
}

TEST(NetworkModelTest, TransferCostChargesEgressPerGib) {
  NetworkModel net(2);
  NetworkLink link;
  link.egress_price_per_gib = 0.09;
  ASSERT_TRUE(net.SetLink(0, 1, link).ok());
  const double two_gib = 2.0 * 1024 * 1024 * 1024;
  auto cost = net.TransferCost(0, 1, two_gib);
  ASSERT_TRUE(cost.ok());
  EXPECT_NEAR(*cost, 0.18, 1e-9);
}

TEST(NetworkModelTest, NegativeBytesRejected) {
  NetworkModel net(2);
  EXPECT_FALSE(net.TransferSeconds(0, 1, -1.0).ok());
  EXPECT_FALSE(net.TransferCost(0, 1, -1.0).ok());
}

TEST(NetworkModelTest, ResizePreservesExistingLinks) {
  NetworkModel net(2);
  NetworkLink link;
  link.bandwidth_mbps = 1.0;
  ASSERT_TRUE(net.SetLink(0, 1, link).ok());
  net.Resize(3);
  EXPECT_EQ(net.num_sites(), 3u);
  // The configured link survives the growth; new links get defaults.
  EXPECT_DOUBLE_EQ(net.Link(0, 1).ValueOrDie().bandwidth_mbps, 1.0);
  EXPECT_NE(net.Link(0, 2).ValueOrDie().bandwidth_mbps, 1.0);
}

TEST(NetworkModelTest, ShrinkingResizeDropsOutOfRangeLinks) {
  NetworkModel net(3);
  NetworkLink link;
  link.bandwidth_mbps = 5.0;
  ASSERT_TRUE(net.SetLink(0, 1, link).ok());
  net.Resize(2);
  EXPECT_DOUBLE_EQ(net.Link(0, 1).ValueOrDie().bandwidth_mbps, 5.0);
  EXPECT_FALSE(net.Link(0, 2).ok());
}

}  // namespace
}  // namespace midas
