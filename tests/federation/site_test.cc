#include "federation/site.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

CloudSite MakeSite() {
  SiteConfig config;
  config.name = "test-site";
  config.provider = ProviderKind::kAmazon;
  config.engines = {EngineKind::kHive, EngineKind::kSpark};
  config.node_type = {ProviderKind::kAmazon, "a1.large", 2, 4.0, 0.0, 0.0098};
  config.max_nodes = 4;
  return CloudSite(0, config);
}

TEST(CloudSiteTest, ExposesConfig) {
  CloudSite site = MakeSite();
  EXPECT_EQ(site.id(), 0u);
  EXPECT_EQ(site.name(), "test-site");
  EXPECT_EQ(site.provider(), ProviderKind::kAmazon);
  EXPECT_EQ(site.max_nodes(), 4);
  EXPECT_EQ(site.node_type().name, "a1.large");
}

TEST(CloudSiteTest, HostsEngine) {
  CloudSite site = MakeSite();
  EXPECT_TRUE(site.HostsEngine(EngineKind::kHive));
  EXPECT_TRUE(site.HostsEngine(EngineKind::kSpark));
  EXPECT_FALSE(site.HostsEngine(EngineKind::kPostgres));
}

TEST(CloudSiteTest, VmCostIsPayAsYouGo) {
  CloudSite site = MakeSite();
  // 2 nodes for 1800 s at $0.0098/h = 2 * 0.0098 * 0.5 = $0.0098.
  auto cost = site.VmCost(2, 1800.0);
  ASSERT_TRUE(cost.ok());
  EXPECT_NEAR(*cost, 0.0098, 1e-9);
}

TEST(CloudSiteTest, VmCostZeroDurationIsFree) {
  CloudSite site = MakeSite();
  EXPECT_DOUBLE_EQ(site.VmCost(1, 0.0).ValueOrDie(), 0.0);
}

TEST(CloudSiteTest, VmCostRejectsNonPositiveNodes) {
  CloudSite site = MakeSite();
  EXPECT_FALSE(site.VmCost(0, 10.0).ok());
  EXPECT_FALSE(site.VmCost(-1, 10.0).ok());
}

TEST(CloudSiteTest, VmCostRejectsOverElasticityLimit) {
  CloudSite site = MakeSite();
  EXPECT_FALSE(site.VmCost(5, 10.0).ok());
}

TEST(CloudSiteTest, VmCostRejectsNegativeDuration) {
  CloudSite site = MakeSite();
  EXPECT_FALSE(site.VmCost(1, -1.0).ok());
}

TEST(CloudSiteTest, VmCostScalesLinearlyInNodes) {
  CloudSite site = MakeSite();
  const double one = site.VmCost(1, 3600.0).ValueOrDie();
  const double four = site.VmCost(4, 3600.0).ValueOrDie();
  EXPECT_NEAR(four, 4.0 * one, 1e-12);
}

}  // namespace
}  // namespace midas
