// Cross-module integration tests: the full MIDAS pipeline over the TPC-H
// substrate, exercising enumeration, estimation, MOQP, execution and the
// feedback loop together.

#include <gtest/gtest.h>

#include "ires/features.h"
#include "ires/scheduler.h"
#include "midas/experiments.h"
#include "optimizer/best_in_pareto.h"
#include "midas/medical.h"
#include "midas/midas.h"
#include "optimizer/pareto.h"
#include "tpch/workload.h"

namespace midas {
namespace {

// MIDAS over the TPC-H catalog: place Q12's tables across the paper
// federation and run the full loop.
TEST(EndToEndTest, TpchQ12ThroughMidas) {
  Federation federation = Federation::PaperFederation();
  tpch::WorkloadOptions wl_opts;
  wl_opts.scale_factor = 0.05;
  tpch::Workload workload(wl_opts);
  Catalog catalog = workload.catalog();
  const SiteId a = federation.FindSiteByName("cloud-A").ValueOrDie();
  const SiteId b = federation.FindSiteByName("cloud-B").ValueOrDie();
  federation.PlaceTable("lineitem", a, EngineKind::kHive).CheckOK();
  federation.PlaceTable("orders", b, EngineKind::kPostgres).CheckOK();

  MidasSystem system(std::move(federation), std::move(catalog),
                     MidasOptions());
  QueryPlan q12 = tpch::MakeQuery(12).ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("q12", q12, 20).ok());

  QueryPolicy policy;
  policy.weights = {0.6, 0.4};
  auto outcome = system.RunQuery("q12", q12, policy);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->moqp.candidates_examined, 50u);
  EXPECT_GT(outcome->actual.seconds, 0.0);
}

// The Pareto set must offer a real time/money trade-off: its extremes
// differ in both metrics.
TEST(EndToEndTest, ParetoSetOffersTradeoff) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(0.1).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  MidasSystem system(std::move(federation), std::move(catalog),
                     MidasOptions());
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("e21", query, 24).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("e21", query, policy);
  ASSERT_TRUE(outcome.ok());
  const auto& costs = outcome->moqp.pareto_costs;
  if (costs.size() >= 2) {
    double min_t = costs[0][0], max_t = costs[0][0];
    double min_m = costs[0][1], max_m = costs[0][1];
    for (const Vector& c : costs) {
      min_t = std::min(min_t, c[0]);
      max_t = std::max(max_t, c[0]);
      min_m = std::min(min_m, c[1]);
      max_m = std::max(max_m, c[1]);
    }
    EXPECT_LT(min_t, max_t);
    EXPECT_LT(min_m, max_m);
  }
}

// Feedback loop: repeated queries keep extending the history, and DREAM
// keeps working as the environment drifts underneath.
TEST(EndToEndTest, AdaptiveLoopSurvivesDrift) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(0.05).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  MidasOptions options;
  options.simulator.variance.drift_amplitude = 0.6;
  options.simulator.variance.drift_period = 40.0;
  MidasSystem system(std::move(federation), std::move(catalog), options);
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("e21", query, 16).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  for (int i = 0; i < 10; ++i) {
    auto outcome = system.RunQuery("e21", query, policy);
    ASSERT_TRUE(outcome.ok()) << "iteration " << i;
  }
  EXPECT_EQ(system.modelling().history().SizeOf("e21"), 26u);
}

// DREAM must track a drifting environment better than the full-history
// baseline — the paper's central claim, checked end to end on Q17.
TEST(EndToEndTest, DreamBeatsFullHistoryUnderDrift) {
  MreExperimentOptions options;
  options.query_ids = {17};
  options.warmup_runs = 30;
  options.eval_runs = 40;
  options.seed = 2019;
  options.estimators = {
      EstimatorConfig::Bml(WindowPolicy::kAll),
      EstimatorConfig::DreamDefault(),
  };
  auto report = RunMreExperiment(options);
  ASSERT_TRUE(report.ok());
  const double bml_all = report->time_mre[0][0];
  const double dream = report->time_mre[0][1];
  EXPECT_LT(dream, bml_all);
}

// The scheduler's recorded features must be exactly what the feature
// extractor computes for the executed plan.
TEST(EndToEndTest, RecordedFeaturesMatchExtractor) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(0.05).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  MidasSystem system(std::move(federation), std::move(catalog),
                     MidasOptions());
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("e21", query, 16).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("e21", query, policy);
  ASSERT_TRUE(outcome.ok());
  const TrainingSet* history =
      system.modelling().history().Get("e21").ValueOrDie();
  const Observation& last = history->at(history->size() - 1);
  auto expected =
      ExtractFeatures(system.federation(), outcome->moqp.chosen_plan());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(last.features, *expected);
}

// Paper §5 future work: the pipeline must carry over to a three-provider
// federation unchanged — more placement choices, bigger plan space.
TEST(EndToEndTest, ThreeCloudFederationRunsQ14) {
  Federation federation = Federation::ThreeCloudFederation();
  tpch::WorkloadOptions wl_opts;
  wl_opts.scale_factor = 0.05;
  tpch::Workload workload(wl_opts);
  Catalog catalog = workload.catalog();
  const SiteId a = federation.FindSiteByName("cloud-A").ValueOrDie();
  const SiteId c = federation.FindSiteByName("cloud-C").ValueOrDie();
  federation.PlaceTable("lineitem", a, EngineKind::kHive).CheckOK();
  federation.PlaceTable("part", c, EngineKind::kPostgres).CheckOK();

  MidasSystem system(std::move(federation), std::move(catalog),
                     MidasOptions());
  QueryPlan q14 = tpch::MakeQuery(14).ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("q14", q14, 20).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("q14", q14, policy);
  ASSERT_TRUE(outcome.ok());
  // Three sites x several engines: the plan space must be larger than the
  // two-cloud setups (which examine ~128 candidates).
  EXPECT_GT(outcome->moqp.candidates_examined, 128u);
  EXPECT_GT(outcome->actual.seconds, 0.0);
}

// The alternative Pareto-set selection strategies must pick members of
// the same front the system produced.
TEST(EndToEndTest, AlternativeSelectionStrategiesOnRealFront) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(0.1).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  MidasSystem system(std::move(federation), std::move(catalog),
                     MidasOptions());
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("e21", query, 24).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("e21", query, policy);
  ASSERT_TRUE(outcome.ok());
  const auto& front = outcome->moqp.pareto_costs;
  auto knee = KneePointSelect(front);
  ASSERT_TRUE(knee.ok());
  EXPECT_LT(*knee, front.size());
  auto lex = LexicographicSelect(front, {0, 1}, 0.1);
  ASSERT_TRUE(lex.ok());
  EXPECT_LT(*lex, front.size());
}

}  // namespace
}  // namespace midas
