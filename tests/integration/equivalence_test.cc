// Cross-component equivalence and consistency checks.

#include <gtest/gtest.h>

#include "ires/modelling.h"
#include "optimizer/best_in_pareto.h"
#include "ml/least_squares.h"
#include "optimizer/pareto.h"
#include "optimizer/wsm.h"
#include "regression/dream.h"

namespace midas {
namespace {

// DREAM stopped at window m must predict what a plain OLS fit on the
// newest m observations predicts — Algorithm 1 is windowed MLR, no more.
// The batch engine goes through FitOls itself, so it matches bitwise; the
// default incremental engine solves the same normal equations via
// Cholesky and computes R² algebraically, so it matches to numerical
// precision.
TEST(EquivalenceTest, DreamMatchesOlsAtItsWindow) {
  Rng rng(3);
  TrainingSet set({"x1", "x2"}, {"c"});
  for (int i = 0; i < 40; ++i) {
    const double x1 = rng.Uniform(0, 10);
    const double x2 = rng.Uniform(0, 10);
    set.Add({x1, x2}, {3 + x1 + 2 * x2 + rng.Gaussian(0, 0.5)}).CheckOK();
  }
  DreamOptions batch_options;
  batch_options.engine = DreamEngine::kBatch;
  auto batch = Dream(batch_options).EstimateCostValue(set).ValueOrDie();
  auto incremental = Dream().EstimateCostValue(set).ValueOrDie();
  ASSERT_EQ(incremental.window_size, batch.window_size);
  const size_t m = batch.window_size;
  auto xs = set.RecentFeatures(m).ValueOrDie();
  auto ys = set.RecentCosts(m, 0).ValueOrDie();
  auto ols = FitOls(xs, ys).ValueOrDie();
  const Vector probe = {4.0, 6.0};
  const double ols_prediction = ols.Predict(probe).ValueOrDie();
  EXPECT_DOUBLE_EQ(batch.models[0].Predict(probe).ValueOrDie(),
                   ols_prediction);
  EXPECT_DOUBLE_EQ(batch.models[0].r_squared(), ols.r_squared());
  EXPECT_NEAR(incremental.models[0].Predict(probe).ValueOrDie(),
              ols_prediction, 1e-9);
  EXPECT_NEAR(incremental.models[0].r_squared(), ols.r_squared(), 1e-9);
}

// The LeastSquaresLearner must agree with FitOls — it is the same model
// behind the Learner interface.
TEST(EquivalenceTest, LeastSquaresLearnerMatchesFitOls) {
  Rng rng(5);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 15; ++i) {
    const double x = rng.Uniform(0, 5);
    xs.push_back({x});
    ys.push_back(2 * x + rng.Gaussian(0, 0.2));
  }
  LeastSquaresLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  auto direct = FitOls(xs, ys).ValueOrDie();
  EXPECT_DOUBLE_EQ(learner.Predict({2.5}).ValueOrDie(),
                   direct.Predict({2.5}).ValueOrDie());
}

// BestInPareto with no constraints must agree with WsmSelect over the
// same set (Algorithm 2 degenerates to the weighted-sum ranking).
TEST(EquivalenceTest, UnconstrainedBestInParetoIsWsmSelect) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vector> costs;
    const size_t n = 3 + rng.Index(20);
    for (size_t i = 0; i < n; ++i) {
      costs.push_back({rng.Uniform(1, 100), rng.Uniform(0.001, 0.1)});
    }
    const double w = rng.Uniform(0.05, 0.95);
    QueryPolicy policy;
    policy.weights = {w, 1.0 - w};
    EXPECT_EQ(BestInPareto(costs, policy).ValueOrDie(),
              WsmSelect(costs, policy.weights).ValueOrDie());
  }
}

// Weak dominance must be a superset relation of strict dominance, and
// standard dominance must sit between them.
TEST(EquivalenceTest, DominanceHierarchy) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const Vector a = {rng.Uniform(0, 2), rng.Uniform(0, 2)};
    const Vector b = {rng.Uniform(0, 2), rng.Uniform(0, 2)};
    if (StrictlyDominates(a, b)) {
      EXPECT_TRUE(Dominates(a, b));
    }
    if (Dominates(a, b)) {
      EXPECT_TRUE(WeaklyDominates(a, b));
    }
  }
}

// Modelling's DREAM path and a hand-rolled Dream over the same history
// must agree (the module adds only clamping, which is inactive for
// positive costs).
TEST(EquivalenceTest, ModellingDreamMatchesRawDream) {
  Modelling modelling({"x"}, {"c"});
  Rng rng(11);
  TrainingSet mirror({"x"}, {"c"});
  for (int i = 0; i < 20; ++i) {
    const double x = rng.Uniform(1, 10);
    const double c = 5 + 3 * x + rng.Gaussian(0, 0.3);
    Observation obs;
    obs.timestamp = i;
    obs.features = {x};
    obs.costs = {c};
    modelling.Record("q", obs).CheckOK();
    mirror.Add(std::move(obs)).CheckOK();
  }
  EstimatorConfig config = EstimatorConfig::DreamDefault();
  const Vector probe = {5.5};
  auto module_pred = modelling.Predict("q", probe, config).ValueOrDie();
  Dream raw(config.dream);
  auto raw_pred = raw.PredictCosts(mirror, probe).ValueOrDie();
  EXPECT_DOUBLE_EQ(module_pred[0], raw_pred[0]);
}

}  // namespace
}  // namespace midas
