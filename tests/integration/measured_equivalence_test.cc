// Measured-cost integration: RunQuery drives the vectorized engine end to
// end — lowering real medical and TPC-H plans, materializing generator
// data through the table cache, and feeding measured Measurements back
// through the scheduler — with results bit-identical across batch sizes
// and to the row-at-a-time oracle.

#include <gtest/gtest.h>

#include "midas/medical.h"
#include "midas/midas.h"
#include "tpch/queries.h"
#include "tpch/workload.h"

namespace midas {
namespace {

constexpr uint64_t kRowCap = 2000;  // keep the oracle runs quick

SimulatorOptions MeasuredOptions(size_t batch_rows = 4096,
                                 bool use_row_oracle = false) {
  SimulatorOptions options;
  options.stochastic = false;
  options.cost_source = CostSource::kMeasured;
  options.measured.batch_rows = batch_rows;
  options.measured.use_row_oracle = use_row_oracle;
  options.measured.max_rows_per_table = kRowCap;
  return options;
}

/// Pins every node of `plan` to one site/engine so it can be executed
/// directly, without going through the optimizer.
void AnnotateAll(QueryPlan* plan, SiteId site, EngineKind engine) {
  for (PlanNode* node : plan->MutableNodes()) {
    node->site = site;
    node->engine = engine;
    node->num_nodes = 1;
  }
}

/// Executes `plan` under each config and asserts every run produces the
/// same nonzero digest.
void CheckDigestsAgree(const Federation& federation, const Catalog& catalog,
                       const QueryPlan& plan) {
  std::vector<uint64_t> digests;
  for (size_t batch_rows : {7u, 256u, 4096u}) {
    ExecutionSimulator sim(&federation, &catalog, MeasuredOptions(batch_rows));
    auto m = sim.Execute(plan);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    digests.push_back(m->result_digest);
  }
  ExecutionSimulator oracle(&federation, &catalog,
                            MeasuredOptions(4096, /*use_row_oracle=*/true));
  auto m = oracle.Execute(plan);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  digests.push_back(m->result_digest);

  EXPECT_NE(digests[0], 0u);
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "config " << i;
  }
}

// The full MIDAS loop in measured mode over the medical catalog: optimize,
// execute on the engine, record the Measurement through the scheduler.
TEST(MeasuredEquivalenceTest, RunQueryFeedsSchedulerFeedback) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(0.01).value();
  PlaceMedicalTables(&federation).CheckOK();
  MidasOptions options;
  options.simulator = MeasuredOptions();
  MidasSystem system(std::move(federation), std::move(catalog), options);
  QueryPlan query = MakeExample21Query().value();
  ASSERT_TRUE(system.Bootstrap("e21", query, 8).ok());

  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("e21", query, policy);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->actual.result_digest, 0u);
  EXPECT_GT(outcome->actual.seconds, 0.0);
  EXPECT_EQ(system.modelling().history().SizeOf("e21"), 9u);

  // The recorded Measurement is the engine's own run of the chosen plan:
  // re-executing that exact plan reproduces the digest bit for bit.
  auto replay = system.simulator().ExecuteMeasured(outcome->moqp.chosen_plan());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().digest, outcome->actual.result_digest);

  // A second query keeps the loop going on warm table-cache entries.
  auto again = system.RunQuery("e21", query, policy);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->actual.result_digest, outcome->actual.result_digest);
  ASSERT_NE(system.simulator().table_cache(), nullptr);
  EXPECT_GT(system.simulator().table_cache()->Stats().hits, 0u);
}

TEST(MeasuredEquivalenceTest, Example21DigestStableAcrossConfigs) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(0.01).value();
  PlaceMedicalTables(&federation).CheckOK();
  const SiteId a = federation.FindSiteByName("cloud-A").value();
  QueryPlan query = MakeExample21Query().value();
  AnnotateAll(&query, a, EngineKind::kHive);
  CheckDigestsAgree(federation, catalog, query);
}

TEST(MeasuredEquivalenceTest, TpchQueriesDigestStableAcrossConfigs) {
  Federation federation = Federation::PaperFederation();
  tpch::WorkloadOptions wl_opts;
  wl_opts.scale_factor = 0.05;
  tpch::Workload workload(wl_opts);
  Catalog catalog = workload.catalog();
  const SiteId a = federation.FindSiteByName("cloud-A").value();
  for (const char* table : {"lineitem", "orders", "part"}) {
    federation.PlaceTable(table, a, EngineKind::kHive).CheckOK();
  }
  for (int query_id : {12, 14, 17}) {
    SCOPED_TRACE(query_id);
    QueryPlan plan = tpch::MakeQuery(query_id).value();
    AnnotateAll(&plan, a, EngineKind::kHive);
    CheckDigestsAgree(federation, catalog, plan);
  }
}

// Measured and analytical modes disagree on where time goes but must agree
// on the plumbing: same plan, both produce valid Measurements, and only
// the measured one carries a digest.
TEST(MeasuredEquivalenceTest, AnalyticalPathUnchanged) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(0.01).value();
  PlaceMedicalTables(&federation).CheckOK();
  const SiteId a = federation.FindSiteByName("cloud-A").value();
  QueryPlan query = MakeExample21Query().value();
  AnnotateAll(&query, a, EngineKind::kHive);

  SimulatorOptions analytical;
  analytical.stochastic = false;
  ExecutionSimulator sim_a(&federation, &catalog, analytical);
  auto ma = sim_a.Execute(query);
  ASSERT_TRUE(ma.ok());
  EXPECT_EQ(ma->result_digest, 0u);
  EXPECT_GT(ma->seconds, 0.0);

  ExecutionSimulator sim_m(&federation, &catalog, MeasuredOptions());
  auto mm = sim_m.Execute(query);
  ASSERT_TRUE(mm.ok());
  EXPECT_NE(mm->result_digest, 0u);
  EXPECT_GT(mm->seconds, 0.0);
  EXPECT_GT(mm->dollars, 0.0);
}

}  // namespace
}  // namespace midas
