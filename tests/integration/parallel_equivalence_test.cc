// Parallel == serial equivalence: every parallel knob added to the MOQP
// pipeline (cost prediction, NSGA offspring evaluation, bagging ensemble
// training, cached prediction) must produce bit-identical results at any
// thread count, and across repeated runs at the same thread count.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/simulator.h"
#include "ires/features.h"
#include "ires/moo_optimizer.h"
#include "ml/bagging.h"
#include "regression/dream.h"
#include "optimizer/nsga2.h"
#include "optimizer/nsga_g.h"
#include "optimizer/problem.h"

namespace midas {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

struct Environment {
  Federation federation;
  Catalog catalog;
  SiteId site_a = 0;
  SiteId site_b = 0;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = 8;
  env.site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 8;
  env.site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 100.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network()
      .SetSymmetricLink(env.site_a, env.site_b, wan)
      .CheckOK();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 200000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 200000},
                {"pay", ColumnType::kString, 72.0, 200000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 5000;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 5000}};
  env.catalog.AddTable(t2).CheckOK();
  env.federation.PlaceTable("t1", env.site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", env.site_b, EngineKind::kPostgres)
      .CheckOK();
  return env;
}

QueryPlan LogicalJoin() {
  return QueryPlan(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id", "id"));
}

SimulatorOptions Deterministic() {
  SimulatorOptions options;
  options.stochastic = false;
  options.variance = VarianceOptions{};
  options.variance.drift_amplitude = 0.0;
  options.variance.ar_sigma = 0.0;
  options.variance.noise_sigma = 0.0;
  return options;
}

MultiObjectiveOptimizer::CostPredictor OraclePredictor(
    ExecutionSimulator* sim, std::atomic<size_t>* calls = nullptr) {
  return [sim, calls](const QueryPlan& plan) -> StatusOr<Vector> {
    if (calls != nullptr) calls->fetch_add(1, std::memory_order_relaxed);
    MIDAS_ASSIGN_OR_RETURN(Measurement m, sim->ExpectedCostAt(plan, 0));
    return Vector{m.seconds, m.dollars};
  };
}

void ExpectSameResult(const MoqpResult& a, const MoqpResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.candidates_examined, b.candidates_examined) << label;
  EXPECT_EQ(a.pareto_costs, b.pareto_costs) << label;
  EXPECT_EQ(a.chosen, b.chosen) << label;
  ASSERT_EQ(a.pareto_plans.size(), b.pareto_plans.size()) << label;
  for (size_t i = 0; i < a.pareto_plans.size(); ++i) {
    EXPECT_EQ(a.pareto_plans[i].ToString(), b.pareto_plans[i].ToString())
        << label << " plan " << i;
  }
}

TEST(ParallelEquivalenceTest, MoqpExhaustiveIdenticalAcrossThreadCounts) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};

  MoqpOptions serial_options;
  serial_options.threads = 1;
  MultiObjectiveOptimizer serial(&env.federation, &env.catalog,
                                 serial_options);
  auto baseline =
      serial.Optimize(LogicalJoin(), OraclePredictor(&sim), policy);
  ASSERT_TRUE(baseline.ok());

  for (size_t threads : kThreadCounts) {
    MoqpOptions options;
    options.threads = threads;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    // Repeated runs at the same thread count must also agree (no
    // scheduling-order leakage into results).
    for (int rep = 0; rep < 2; ++rep) {
      auto result =
          optimizer.Optimize(LogicalJoin(), OraclePredictor(&sim), policy);
      ASSERT_TRUE(result.ok());
      ExpectSameResult(*baseline, *result,
                       "threads=" + std::to_string(threads) + " rep=" +
                           std::to_string(rep));
    }
  }
}

TEST(ParallelEquivalenceTest, MoqpNsgaIdenticalAcrossThreadCounts) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};

  for (MoqpAlgorithm algorithm :
       {MoqpAlgorithm::kNsga2, MoqpAlgorithm::kNsgaG}) {
    MoqpResult baseline;
    bool have_baseline = false;
    for (size_t threads : kThreadCounts) {
      MoqpOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      options.nsga2.population_size = 24;
      options.nsga2.generations = 12;
      options.nsga2.evaluation_threads = threads;
      options.nsga_g.population_size = 24;
      options.nsga_g.generations = 12;
      options.nsga_g.evaluation_threads = threads;
      MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                        options);
      auto result =
          optimizer.Optimize(LogicalJoin(), OraclePredictor(&sim), policy);
      ASSERT_TRUE(result.ok()) << MoqpAlgorithmName(algorithm);
      if (!have_baseline) {
        baseline = *result;
        have_baseline = true;
      } else {
        ExpectSameResult(baseline, *result,
                         MoqpAlgorithmName(algorithm) + " threads=" +
                             std::to_string(threads));
      }
    }
  }
}

TEST(ParallelEquivalenceTest, Nsga2PopulationBitIdentical) {
  MooResult baseline;
  bool have_baseline = false;
  for (size_t threads : kThreadCounts) {
    Nsga2Options options;
    options.population_size = 20;
    options.generations = 15;
    options.seed = 11;
    options.evaluation_threads = threads;
    auto result = Nsga2(options).Optimize(Zdt1(8));
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    if (!have_baseline) {
      baseline = *result;
      have_baseline = true;
      continue;
    }
    ASSERT_EQ(result->population.size(), baseline.population.size());
    for (size_t i = 0; i < baseline.population.size(); ++i) {
      EXPECT_EQ(result->population[i].variables,
                baseline.population[i].variables)
          << "threads=" << threads << " individual " << i;
      EXPECT_EQ(result->population[i].objectives,
                baseline.population[i].objectives)
          << "threads=" << threads << " individual " << i;
    }
    EXPECT_EQ(result->front, baseline.front) << "threads=" << threads;
  }
}

TEST(ParallelEquivalenceTest, NsgaGPopulationBitIdentical) {
  MooResult baseline;
  bool have_baseline = false;
  for (size_t threads : kThreadCounts) {
    NsgaGOptions options;
    options.population_size = 20;
    options.generations = 15;
    options.seed = 11;
    options.evaluation_threads = threads;
    auto result = NsgaG(options).Optimize(Zdt2(8));
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    if (!have_baseline) {
      baseline = *result;
      have_baseline = true;
      continue;
    }
    ASSERT_EQ(result->population.size(), baseline.population.size());
    for (size_t i = 0; i < baseline.population.size(); ++i) {
      EXPECT_EQ(result->population[i].variables,
                baseline.population[i].variables)
          << "threads=" << threads << " individual " << i;
    }
    EXPECT_EQ(result->front, baseline.front) << "threads=" << threads;
  }
}

TEST(ParallelEquivalenceTest, BaggingEnsembleBitIdentical) {
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 60; ++i) {
    const double x = 0.1 * i;
    xs.push_back({x});
    ys.push_back(3.0 * x + 1.0);
  }
  const std::vector<Vector> probes = {{0.15}, {2.5}, {4.95}};

  std::vector<double> baseline;
  for (size_t threads : kThreadCounts) {
    BaggingOptions options;
    options.num_estimators = 12;
    options.seed = 19;
    options.threads = threads;
    BaggingLearner learner(options);
    ASSERT_TRUE(learner.Fit(xs, ys).ok()) << "threads=" << threads;
    EXPECT_EQ(learner.num_fitted_estimators(), 12u);
    std::vector<double> predictions;
    for (const Vector& p : probes) {
      predictions.push_back(learner.Predict(p).ValueOrDie());
    }
    if (baseline.empty()) {
      baseline = predictions;
    } else {
      EXPECT_EQ(predictions, baseline) << "threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, CachedPredictionsMatchUncached) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};

  MultiObjectiveOptimizer uncached(&env.federation, &env.catalog);
  auto baseline =
      uncached.Optimize(LogicalJoin(), OraclePredictor(&sim), policy);
  ASSERT_TRUE(baseline.ok());

  // The deterministic simulator's expected cost depends only on the plan's
  // extracted features for this single-join query, so caching is sound
  // here and must not change any result.
  MoqpOptions options;
  options.threads = 2;
  options.cache_predictions = true;
  MultiObjectiveOptimizer cached(&env.federation, &env.catalog, options);

  std::atomic<size_t> cold_calls{0};
  auto cold =
      cached.Optimize(LogicalJoin(), OraclePredictor(&sim, &cold_calls),
                      policy);
  ASSERT_TRUE(cold.ok());
  ExpectSameResult(*baseline, *cold, "cold cache");
  // Equivalent QEPs collapse onto shared feature vectors: fewer predictor
  // calls than candidates, and the result reports the collapse.
  EXPECT_EQ(cold->predictor_calls, cold_calls.load());
  EXPECT_LT(cold->predictor_calls, cold->candidates_examined);
  EXPECT_EQ(cold->cache_hits, 0u);
  EXPECT_EQ(cold->cache_misses, cold->predictor_calls);

  // Second run on the same optimizer: everything is a hit.
  std::atomic<size_t> warm_calls{0};
  auto warm =
      cached.Optimize(LogicalJoin(), OraclePredictor(&sim, &warm_calls),
                      policy);
  ASSERT_TRUE(warm.ok());
  ExpectSameResult(*baseline, *warm, "warm cache");
  EXPECT_EQ(warm_calls.load(), 0u);
  EXPECT_EQ(warm->predictor_calls, 0u);
  EXPECT_EQ(warm->cache_misses, 0u);
  EXPECT_GT(warm->cache_hits, 0u);
  EXPECT_EQ(cached.prediction_cache().size(), cold->cache_misses);

  // Clearing the cache forces fresh predictions again.
  cached.ClearPredictionCache();
  std::atomic<size_t> cleared_calls{0};
  auto cleared =
      cached.Optimize(LogicalJoin(), OraclePredictor(&sim, &cleared_calls),
                      policy);
  ASSERT_TRUE(cleared.ok());
  ExpectSameResult(*baseline, *cleared, "cleared cache");
  EXPECT_EQ(cleared_calls.load(), cold_calls.load());
}

TEST(ParallelEquivalenceTest, BatchedCostingMatchesScalarSerial) {
  // The batched costing stage (SoA feature matrix -> chunked PredictBatch)
  // must reproduce the serial scalar pipeline bit-for-bit: same front, same
  // chosen plan, at every thread count, batch size, and cache setting. The
  // predictor is a captured DREAM estimate, whose batch evaluation is
  // bit-identical to its per-row Predict by construction.
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};

  // Train a DREAM estimate on a synthetic linear history over the plan
  // feature layout, then freeze it so scalar and batch paths share one
  // model. The estimate only sees feature vectors, so synthetic training
  // data exercises exactly the same prediction code as live history.
  const std::vector<std::string> names = FeatureNames(env.federation);
  TrainingSet history(names, {"time", "money"});
  {
    Rng rng(97);
    for (int i = 0; i < 40; ++i) {
      Vector x(names.size());
      for (double& v : x) v = rng.Uniform(0, 100);
      double time = 3.0, money = 0.2;
      for (size_t j = 0; j < x.size(); ++j) {
        time += (0.5 + 0.1 * j) * x[j];
        money += 0.01 * x[j];
      }
      history.Add(std::move(x), {time, money}).CheckOK();
    }
  }
  Dream dream;
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());

  const Federation* federation = &env.federation;
  auto scalar_predictor =
      [federation, &est](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Vector features,
                           ExtractFeatures(*federation, plan));
    return est->Predict(features);
  };
  MultiObjectiveOptimizer::BatchCostPredictor batch_predictor =
      [&est](const Matrix& features, Matrix* costs) -> Status {
    MIDAS_ASSIGN_OR_RETURN(*costs, est->PredictBatch(features));
    return Status::OK();
  };

  MoqpOptions serial_options;
  serial_options.threads = 1;
  MultiObjectiveOptimizer serial(&env.federation, &env.catalog,
                                 serial_options);
  auto baseline = serial.Optimize(LogicalJoin(), scalar_predictor, policy);
  ASSERT_TRUE(baseline.ok());

  for (size_t threads : kThreadCounts) {
    for (size_t batch_size : {size_t{0}, size_t{1}, size_t{7}, size_t{1024}}) {
      for (bool cache : {false, true}) {
        MoqpOptions options;
        options.threads = threads;
        options.batch_size = batch_size;
        options.cache_predictions = cache;
        MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                          options);
        auto result = optimizer.Optimize(LogicalJoin(), batch_predictor,
                                         policy);
        const std::string label = "threads=" + std::to_string(threads) +
                                  " batch=" + std::to_string(batch_size) +
                                  " cache=" + std::to_string(cache);
        ASSERT_TRUE(result.ok()) << label;
        ExpectSameResult(*baseline, *result, label);
        if (cache) {
          // Deduped: each distinct feature vector scored at most once.
          EXPECT_LE(result->predictor_calls, result->candidates_examined)
              << label;
          EXPECT_EQ(result->cache_misses, result->predictor_calls) << label;
        } else {
          EXPECT_EQ(result->predictor_calls, result->candidates_examined)
              << label;
        }
      }
    }
  }
}

TEST(ParallelEquivalenceTest, StreamingMatchesMaterializedBatched) {
  // The streaming pipeline (chunked enumeration -> batched costing ->
  // online Pareto archive) must reproduce the materialized batched path
  // bit-for-bit at every thread count, stream chunk size, and cache
  // setting, while never holding more candidates than the materialized
  // run does.
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};

  // Pure function of the feature rows, so it is thread-safe and sound to
  // cache.
  MultiObjectiveOptimizer::BatchCostPredictor predictor =
      [](const Matrix& features, Matrix* costs) -> Status {
    *costs = Matrix(features.rows(), 2, 0.0);
    for (size_t r = 0; r < features.rows(); ++r) {
      double time = 3.0;
      double money = 0.2;
      for (size_t c = 0; c < features.cols(); ++c) {
        time += (0.5 + 0.1 * c) * features(r, c);
        money += 0.01 * features(r, c);
      }
      (*costs)(r, 0) = time;
      (*costs)(r, 1) = money;
    }
    return Status::OK();
  };

  MoqpOptions serial_options;
  serial_options.threads = 1;
  MultiObjectiveOptimizer serial(&env.federation, &env.catalog,
                                 serial_options);
  auto baseline = serial.Optimize(LogicalJoin(), predictor, policy);
  ASSERT_TRUE(baseline.ok());

  for (size_t threads : kThreadCounts) {
    for (size_t chunk : {size_t{0}, size_t{1}, size_t{7}, size_t{1024}}) {
      for (bool cache : {false, true}) {
        MoqpOptions options;
        options.threads = threads;
        options.stream_chunk_size = chunk;
        options.batch_size = 16;
        options.cache_predictions = cache;
        MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                          options);
        auto result =
            optimizer.OptimizeStreaming(LogicalJoin(), predictor, policy);
        const std::string label = "threads=" + std::to_string(threads) +
                                  " chunk=" + std::to_string(chunk) +
                                  " cache=" + std::to_string(cache);
        ASSERT_TRUE(result.ok()) << label;
        ExpectSameResult(*baseline, *result, label);
        EXPECT_LE(result->peak_resident_candidates,
                  baseline->peak_resident_candidates)
            << label;
        if (chunk == 1) {
          EXPECT_LT(result->peak_resident_candidates,
                    baseline->peak_resident_candidates)
              << label;
        }
      }
    }
  }
}

TEST(ParallelEquivalenceTest, BatchedPredictorErrorsSurface) {
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  MoqpOptions options;
  options.threads = 4;
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog, options);

  MultiObjectiveOptimizer::BatchCostPredictor failing =
      [](const Matrix&, Matrix*) -> Status {
    return Status::InvalidArgument("predictor offline");
  };
  auto failed = optimizer.Optimize(LogicalJoin(), failing, policy);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().message(), "predictor offline");

  // Wrong-sized batches are rejected rather than silently scattered.
  MultiObjectiveOptimizer::BatchCostPredictor short_batch =
      [](const Matrix& features, Matrix* costs) -> Status {
    *costs = Matrix(features.rows() / 2, 2, 1.0);
    return Status::OK();
  };
  EXPECT_FALSE(optimizer.Optimize(LogicalJoin(), short_batch, policy).ok());

  // Arity mismatches against the policy are rejected too.
  MultiObjectiveOptimizer::BatchCostPredictor one_metric =
      [](const Matrix& features, Matrix* costs) -> Status {
    *costs = Matrix(features.rows(), 1, 1.0);
    return Status::OK();
  };
  EXPECT_FALSE(optimizer.Optimize(LogicalJoin(), one_metric, policy).ok());
}

TEST(ParallelEquivalenceTest, ParallelFirstErrorMatchesSerial) {
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};

  // A predictor that fails on every call: serial and parallel must report
  // the same (first) error.
  auto failing = [](const QueryPlan&) -> StatusOr<Vector> {
    return Status::InvalidArgument("predictor offline");
  };
  Status serial_status, parallel_status;
  {
    MoqpOptions options;
    options.threads = 1;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    serial_status = optimizer.Optimize(LogicalJoin(), failing, policy)
                        .status();
  }
  {
    MoqpOptions options;
    options.threads = 8;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    parallel_status = optimizer.Optimize(LogicalJoin(), failing, policy)
                          .status();
  }
  EXPECT_FALSE(serial_status.ok());
  EXPECT_FALSE(parallel_status.ok());
  EXPECT_EQ(serial_status.code(), parallel_status.code());
  EXPECT_EQ(serial_status.message(), parallel_status.message());
}

}  // namespace
}  // namespace midas
