// Parameterised property suites over the library's key invariants.

#include <algorithm>

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/simulator.h"
#include "optimizer/metrics.h"
#include "optimizer/nsga2.h"
#include "optimizer/pareto.h"
#include "query/enumerator.h"
#include "regression/dream.h"
#include "tpch/workload.h"

namespace midas {
namespace {

// --- Property: OLS residuals are orthogonal to fitted values -------------

class OlsOrthogonalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OlsOrthogonalityTest, ResidualsOrthogonalToFit) {
  Rng rng(GetParam());
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 25; ++i) {
    const double x1 = rng.Uniform(0, 10);
    const double x2 = rng.Uniform(0, 10);
    xs.push_back({x1, x2});
    ys.push_back(3.0 + x1 - 0.5 * x2 + rng.Gaussian(0, 1.0));
  }
  auto model = FitOls(xs, ys).ValueOrDie();
  double dot = 0.0;
  double fit_norm = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double fitted = model.Predict(xs[i]).ValueOrDie();
    dot += (ys[i] - fitted) * fitted;
    fit_norm += fitted * fitted;
  }
  EXPECT_NEAR(dot / fit_norm, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OlsOrthogonalityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Property: R² never decreases when the true model is fitted exactly --

class DreamMonotoneTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DreamMonotoneTest, WindowChoiceIsReproducible) {
  Rng rng(GetParam());
  TrainingSet set({"x"}, {"c"});
  for (int i = 0; i < 30; ++i) {
    const double x = rng.Uniform(0, 5);
    set.Add({x}, {2.0 * x + rng.Gaussian(0, 0.4)}).CheckOK();
  }
  Dream dream;
  const size_t w1 = dream.EstimateCostValue(set).ValueOrDie().window_size;
  const size_t w2 = dream.EstimateCostValue(set).ValueOrDie().window_size;
  EXPECT_EQ(w1, w2);
  EXPECT_GE(w1, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DreamMonotoneTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- Property: the Pareto front of any finite cost set is non-empty and
// mutually non-dominated --------------------------------------------------

class ParetoInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParetoInvariantTest, FrontNonEmptyAndNonDominated) {
  Rng rng(GetParam());
  std::vector<Vector> costs;
  const size_t n = 5 + rng.Index(60);
  for (size_t i = 0; i < n; ++i) {
    costs.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10),
                     rng.Uniform(0, 10)});
  }
  const auto front = ParetoFrontIndices(costs);
  ASSERT_FALSE(front.empty());
  for (size_t i : front) {
    for (size_t j : front) {
      if (i != j) {
        EXPECT_FALSE(Dominates(costs[i], costs[j]));
      }
    }
  }
  // Every non-front point is dominated by some front point.
  for (size_t i = 0; i < costs.size(); ++i) {
    if (std::find(front.begin(), front.end(), i) != front.end()) continue;
    bool dominated = false;
    for (size_t j : front) {
      if (Dominates(costs[j], costs[i])) dominated = true;
    }
    EXPECT_TRUE(dominated) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoInvariantTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// --- Property: hypervolume is monotone under adding front points ---------

class HypervolumeMonotoneTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HypervolumeMonotoneTest, AddingPointsNeverShrinksVolume) {
  Rng rng(GetParam());
  const Vector reference = {10.0, 10.0};
  std::vector<Vector> front;
  double previous = 0.0;
  for (int i = 0; i < 15; ++i) {
    front.push_back({rng.Uniform(0, 9.5), rng.Uniform(0, 9.5)});
    const double hv = Hypervolume2D(front, reference).ValueOrDie();
    EXPECT_GE(hv, previous - 1e-12);
    previous = hv;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervolumeMonotoneTest,
                         ::testing::Values(7, 17, 27, 37));

// --- Property: simulated costs are positive and monotone in data size ----

class SimulatorScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(SimulatorScaleTest, CostsGrowWithScaleFactor) {
  const double sf = GetParam();
  Federation fed;
  SiteConfig site;
  site.name = "S";
  site.engines = {EngineKind::kHive};
  site.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  site.max_nodes = 4;
  fed.AddSite(site).ValueOrDie();
  tpch::WorkloadOptions small_opts;
  small_opts.scale_factor = sf;
  tpch::Workload workload(small_opts);
  fed.PlaceTable("lineitem", 0, EngineKind::kHive).CheckOK();
  fed.PlaceTable("orders", 0, EngineKind::kHive).CheckOK();

  SimulatorOptions sim_opts;
  sim_opts.stochastic = false;
  sim_opts.variance.drift_amplitude = 0.0;
  sim_opts.variance.ar_sigma = 0.0;
  sim_opts.variance.noise_sigma = 0.0;
  ExecutionSimulator sim(&fed, &workload.catalog(), sim_opts);

  EnumeratorOptions enum_opts;
  enum_opts.node_counts = {2};
  enum_opts.enumerate_join_orders = false;
  PlanEnumerator enumerator(&fed, &workload.catalog(), enum_opts);
  auto plans =
      enumerator.EnumeratePhysical(tpch::MakeQuery(12).ValueOrDie());
  ASSERT_TRUE(plans.ok());
  auto m = sim.ExpectedCostAt((*plans)[0], 0);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->seconds, 0.0);
  EXPECT_GT(m->dollars, 0.0);

  // Compare with double the scale factor: strictly more expensive.
  tpch::WorkloadOptions big_opts;
  big_opts.scale_factor = sf * 2.0;
  tpch::Workload big_workload(big_opts);
  ExecutionSimulator big_sim(&fed, &big_workload.catalog(), sim_opts);
  PlanEnumerator big_enumerator(&fed, &big_workload.catalog(), enum_opts);
  auto big_plans =
      big_enumerator.EnumeratePhysical(tpch::MakeQuery(12).ValueOrDie());
  ASSERT_TRUE(big_plans.ok());
  auto big_m = big_sim.ExpectedCostAt((*big_plans)[0], 0);
  ASSERT_TRUE(big_m.ok());
  EXPECT_GT(big_m->seconds, m->seconds);
  EXPECT_GT(big_m->dollars, m->dollars);
}

INSTANTIATE_TEST_SUITE_P(Scales, SimulatorScaleTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.5));

// --- Property: NSGA-II front quality is stable across seeds --------------

class Nsga2SeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Nsga2SeedTest, HypervolumeAboveFloor) {
  Nsga2Options options;
  options.population_size = 60;
  options.generations = 80;
  options.seed = GetParam();
  auto result = Nsga2(options).Optimize(Zdt1(8));
  ASSERT_TRUE(result.ok());
  const double hv =
      Hypervolume2D(result->FrontObjectives(), {1.1, 1.1}).ValueOrDie();
  // The true front's hypervolume w.r.t. (1.1, 1.1) is ~0.757; accept any
  // reasonable approximation.
  EXPECT_GT(hv, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Nsga2SeedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace midas
