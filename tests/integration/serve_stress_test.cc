// Multi-tenant serving under concurrency: 64 tenant lanes submitting mixed
// read/feedback traffic from 8 submitter threads into a 4-slot
// QueryService. Asserts the service's three load-bearing guarantees:
//
//  1. per-tenant FIFO — a tenant's requests execute in submission order;
//  2. admission-time snapshot pinning — every outcome was predicted
//     against exactly the epoch pinned when the request was dispatched;
//  3. replay equivalence — re-running the recorded global execution order
//     through a fresh identical MidasSystem::RunQuery reproduces every
//     outcome (bitwise under MIDAS_FORCE_SCALAR, within the SIMD drift
//     budget otherwise).
//
// Runs under tsan via scripts/check.sh; sizes are chosen so the sanitizer
// suite stays tolerable on small CI hosts.

#include <algorithm>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "midas/medical.h"
#include "serve/query_service.h"
#include "support/simd_testing.h"

namespace midas {
namespace {

constexpr size_t kTenants = 64;
constexpr size_t kRequestsPerTenant = 2;
constexpr size_t kSubmitters = 8;
constexpr size_t kBootstrapRuns = 12;

MidasSystem MakeSystem() {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(/*scale=*/0.05).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  MidasOptions options;
  options.seed = 4242;
  return MidasSystem(std::move(federation), std::move(catalog), options);
}

std::string TenantName(size_t t) { return "t" + std::to_string(t); }

// Mixed traffic: each request leans on a different policy corner, so
// tenants exercise different Pareto picks against the shared snapshots.
QueryPolicy PolicyFor(size_t tenant, size_t request) {
  const double corners[3] = {0.5, 0.7, 0.3};
  QueryPolicy policy;
  const double w = corners[(tenant + request) % 3];
  policy.weights = {w, 1.0 - w};
  return policy;
}

TEST(ServeStressTest, SixtyFourTenantsReplayBitIdentical) {
  MidasSystem served_system = MakeSystem();
  MidasSystem replay_system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  // Identical warm-up on both systems, in the same order.
  for (size_t t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        served_system.Bootstrap(TenantName(t), query, kBootstrapRuns).ok());
    ASSERT_TRUE(
        replay_system.Bootstrap(TenantName(t), query, kBootstrapRuns).ok());
  }

  ServeOptions options;
  options.slots = 4;
  options.queue_capacity = kTenants * kRequestsPerTenant;
  options.tenant_inflight_cap = 0;  // all traffic must land, none shed
  QueryService service(&served_system, options);

  // results[t][r] = outcome of tenant t's r-th request.
  std::vector<std::vector<QueryService::Result>> results(
      kTenants,
      std::vector<QueryService::Result>(
          kRequestsPerTenant, Status::Internal("not served")));
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      // Each submitter owns a contiguous block of tenants and submits
      // their requests in per-tenant order (FIFO is about one tenant's
      // lane, so cross-tenant interleaving is free).
      for (size_t t = s * (kTenants / kSubmitters);
           t < (s + 1) * (kTenants / kSubmitters); ++t) {
        std::vector<std::future<QueryService::Result>> futures;
        for (size_t r = 0; r < kRequestsPerTenant; ++r) {
          auto submitted = service.Submit(
              TenantName(t),
              QueryRequest{TenantName(t), query, PolicyFor(t, r)});
          ASSERT_TRUE(submitted.ok()) << submitted.status();
          futures.push_back(std::move(*submitted));
        }
        for (size_t r = 0; r < kRequestsPerTenant; ++r) {
          results[t][r] = futures[r].get();
        }
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  service.Drain();

  // (1) + (2): FIFO per tenant, admission-epoch pinning, and the global
  // execution order is a permutation of 1..N.
  constexpr size_t kTotal = kTenants * kRequestsPerTenant;
  std::vector<uint64_t> seen_seqs;
  for (size_t t = 0; t < kTenants; ++t) {
    for (size_t r = 0; r < kRequestsPerTenant; ++r) {
      ASSERT_TRUE(results[t][r].ok()) << results[t][r].status();
      const Served& served = *results[t][r];
      EXPECT_EQ(served.admission_epoch, served.outcome.moqp.snapshot_epoch);
      EXPECT_GT(served.feedback_epoch, served.admission_epoch);
      if (r > 0) {
        EXPECT_LT(results[t][r - 1]->execution_seq, served.execution_seq)
            << "tenant " << t << " executed out of submission order";
      }
      seen_seqs.push_back(served.execution_seq);
    }
  }
  std::sort(seen_seqs.begin(), seen_seqs.end());
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen_seqs[i], i + 1);
  }

  // (3): serial replay of the recorded execution order reproduces every
  // outcome.
  std::vector<std::pair<uint64_t, std::pair<size_t, size_t>>> order;
  for (size_t t = 0; t < kTenants; ++t) {
    for (size_t r = 0; r < kRequestsPerTenant; ++r) {
      order.push_back({results[t][r]->execution_seq, {t, r}});
    }
  }
  std::sort(order.begin(), order.end());
  for (const auto& [seq, who] : order) {
    const auto [t, r] = who;
    const Served& served = *results[t][r];
    auto replayed =
        replay_system.RunQuery(TenantName(t), query, PolicyFor(t, r));
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    SCOPED_TRACE("seq " + std::to_string(seq) + " tenant " +
                 std::to_string(t) + " request " + std::to_string(r));
    EXPECT_EQ(served.outcome.moqp.chosen_plan().ToString(),
              replayed->moqp.chosen_plan().ToString());
    ASSERT_EQ(served.outcome.predicted.size(), replayed->predicted.size());
    for (size_t k = 0; k < replayed->predicted.size(); ++k) {
      MIDAS_EXPECT_SIMD_EQ(served.outcome.predicted[k],
                           replayed->predicted[k]);
    }
    EXPECT_DOUBLE_EQ(served.outcome.actual.seconds,
                     replayed->actual.seconds);
    EXPECT_DOUBLE_EQ(served.outcome.actual.dollars,
                     replayed->actual.dollars);
  }

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.served, kTotal);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.admission.accepted, kTotal);
  EXPECT_EQ(stats.service_latency.count(), kTotal);
}

}  // namespace
}  // namespace midas
