// Sharded == serial equivalence: the sharded OptimizeStreaming pipeline
// (partitioned enumeration -> per-shard costing and Pareto folding ->
// tree merge -> sequence restore) must be bit-identical to the
// single-stream path and the materialized batched path at every shard
// count, chunk size and cache setting — plus a ThreadSanitizer-visible
// stress that builds and merges shard archives concurrently.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "ires/moo_optimizer.h"
#include "optimizer/pareto_archive.h"

namespace midas {
namespace {

struct Environment {
  Federation federation;
  Catalog catalog;
  SiteId site_a = 0;
  SiteId site_b = 0;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive, EngineKind::kSpark};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = 8;
  env.site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 8;
  env.site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 100.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network()
      .SetSymmetricLink(env.site_a, env.site_b, wan)
      .CheckOK();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 200000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 200000},
                {"pay", ColumnType::kString, 72.0, 200000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 5000;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 5000}};
  env.catalog.AddTable(t2).CheckOK();
  env.federation.PlaceTable("t1", env.site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", env.site_b, EngineKind::kPostgres)
      .CheckOK();
  return env;
}

QueryPlan LogicalJoin() {
  return QueryPlan(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id", "id"));
}

// Pure function of the feature rows with alternating-sign weights, so the
// front is a genuine time/money trade-off: thread-safe and sound to
// cache.
MultiObjectiveOptimizer::BatchCostPredictor LinearPredictor() {
  return [](const Matrix& features, Matrix* costs) -> Status {
    *costs = Matrix(features.rows(), 2, 0.0);
    for (size_t r = 0; r < features.rows(); ++r) {
      double time = 3.0;
      double money = 0.2;
      for (size_t c = 0; c < features.cols(); ++c) {
        const double sign = c % 2 == 0 ? 1.0 : -1.0;
        time += (0.5 + 0.1 * static_cast<double>(c)) * features(r, c);
        money += sign * 0.01 * features(r, c);
      }
      (*costs)(r, 0) = time;
      (*costs)(r, 1) = money;
    }
    return Status::OK();
  };
}

void ExpectSameResult(const MoqpResult& a, const MoqpResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.candidates_examined, b.candidates_examined) << label;
  EXPECT_EQ(a.pareto_costs, b.pareto_costs) << label;
  EXPECT_EQ(a.chosen, b.chosen) << label;
  ASSERT_EQ(a.pareto_plans.size(), b.pareto_plans.size()) << label;
  for (size_t i = 0; i < a.pareto_plans.size(); ++i) {
    EXPECT_EQ(a.pareto_plans[i].ToString(), b.pareto_plans[i].ToString())
        << label << " plan " << i;
  }
}

TEST(ShardEquivalenceTest, ShardedStreamingMatchesSerialStreaming) {
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  const auto predictor = LinearPredictor();

  MoqpOptions serial_options;
  MultiObjectiveOptimizer serial(&env.federation, &env.catalog,
                                 serial_options);
  auto materialized = serial.Optimize(LogicalJoin(), predictor, policy);
  ASSERT_TRUE(materialized.ok());
  auto baseline = serial.OptimizeStreaming(LogicalJoin(), predictor, policy);
  ASSERT_TRUE(baseline.ok());
  ExpectSameResult(*materialized, *baseline, "streaming baseline");
  EXPECT_TRUE(baseline->shard_stats.empty());

  for (size_t shards : {size_t{2}, size_t{3}, size_t{8}}) {
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{1024}}) {
      for (bool cache : {false, true}) {
        MoqpOptions options;
        options.shards = shards;
        options.stream_chunk_size = chunk;
        options.batch_size = 16;
        options.cache_predictions = cache;
        MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                          options);
        const std::string label = "shards=" + std::to_string(shards) +
                                  " chunk=" + std::to_string(chunk) +
                                  " cache=" + std::to_string(cache);
        // Repeated runs must agree too: scheduling order may shift the
        // cache hit/miss split but never the result.
        for (int rep = 0; rep < 2; ++rep) {
          auto result =
              optimizer.OptimizeStreaming(LogicalJoin(), predictor, policy);
          ASSERT_TRUE(result.ok()) << label;
          ExpectSameResult(*baseline, *result, label);

          // Per-shard stats: one row per shard, examined sums to the
          // total, peaks sum to the aggregate, and the fronts cannot be
          // larger than the shard's own candidate slice.
          ASSERT_EQ(result->shard_stats.size(), shards) << label;
          uint64_t examined = 0;
          size_t peak = 0;
          for (size_t s = 0; s < result->shard_stats.size(); ++s) {
            const MoqpShardStats& stats = result->shard_stats[s];
            EXPECT_EQ(stats.shard, s) << label;
            examined += stats.candidates_examined;
            peak += stats.peak_resident_candidates;
            EXPECT_LE(stats.front_size, stats.candidates_examined) << label;
          }
          EXPECT_EQ(examined, result->candidates_examined) << label;
          EXPECT_EQ(peak, result->peak_resident_candidates) << label;

          // The aggregated counters keep the per-pipeline invariants.
          if (cache) {
            EXPECT_EQ(result->predictor_calls, result->cache_misses) << label;
          } else {
            EXPECT_EQ(result->predictor_calls, result->candidates_examined)
                << label;
            EXPECT_EQ(result->cache_hits + result->cache_misses, 0u) << label;
          }
        }
      }
    }
  }
}

TEST(ShardEquivalenceTest, DefaultShardCountAndCapBehaveLikeSerial) {
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  const auto predictor = LinearPredictor();

  // shards = 0 resolves to the process default; with a max_plans cap the
  // sharded union must still be exactly the first capped serial plans.
  for (size_t max_plans : {size_t{20000}, size_t{37}}) {
    MoqpOptions serial_options;
    serial_options.enumerator.max_plans = max_plans;
    MultiObjectiveOptimizer serial(&env.federation, &env.catalog,
                                   serial_options);
    auto baseline =
        serial.OptimizeStreaming(LogicalJoin(), predictor, policy);
    ASSERT_TRUE(baseline.ok());

    MoqpOptions options;
    options.enumerator.max_plans = max_plans;
    options.shards = 0;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog, options);
    auto result =
        optimizer.OptimizeStreaming(LogicalJoin(), predictor, policy);
    const std::string label = "max_plans=" + std::to_string(max_plans);
    ASSERT_TRUE(result.ok()) << label;
    ExpectSameResult(*baseline, *result, label);
  }
}

TEST(ShardEquivalenceTest, NonStreamingAlgorithmsIgnoreShards) {
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  const auto predictor = LinearPredictor();

  MoqpOptions wsm_serial;
  wsm_serial.algorithm = MoqpAlgorithm::kWsm;
  MultiObjectiveOptimizer serial(&env.federation, &env.catalog, wsm_serial);
  auto baseline = serial.Optimize(LogicalJoin(), predictor, policy);
  ASSERT_TRUE(baseline.ok());

  MoqpOptions wsm_sharded = wsm_serial;
  wsm_sharded.shards = 8;
  MultiObjectiveOptimizer sharded(&env.federation, &env.catalog, wsm_sharded);
  auto result = sharded.OptimizeStreaming(LogicalJoin(), predictor, policy);
  ASSERT_TRUE(result.ok());
  ExpectSameResult(*baseline, *result, "wsm fallback");
  EXPECT_TRUE(result->shard_stats.empty());
}

// ThreadSanitizer stress for the merge machinery itself: shard archives
// are built concurrently (one worker per shard), then merged in parallel
// pairwise rounds — disjoint pairs run on different workers, exactly the
// access pattern a parallel merge coordinator would use. The final front
// must equal the single-pass reference regardless of the interleaving.
TEST(ShardEquivalenceTest, ConcurrentShardBuildAndMergeStress) {
  Rng rng(20260807);
  constexpr size_t kStream = 6000;
  constexpr size_t kShards = 8;
  std::vector<Vector> costs(kStream, Vector(3));
  for (Vector& c : costs) {
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 12));
  }

  // Reference: single-pass archive over the whole stream.
  ParetoArchive<int> reference;
  for (size_t i = 0; i < kStream; ++i) {
    reference.Insert(costs[i], static_cast<int>(i));
  }

  for (int rep = 0; rep < 3; ++rep) {
    std::vector<ParetoArchive<int>> shards(kShards);
    ParallelForOptions parallel;
    parallel.threads = kShards;
    ASSERT_TRUE(ParallelFor(
                    kShards,
                    [&](size_t s) -> Status {
                      for (size_t i = s; i < kStream; i += kShards) {
                        shards[s].InsertSequenced(costs[i], i,
                                                  static_cast<int>(i));
                      }
                      return Status::OK();
                    },
                    parallel)
                    .ok());
    // Parallel pairwise merge rounds: round k merges shard i+half into
    // shard i for disjoint i, so no archive is touched by two workers.
    size_t count = kShards;
    while (count > 1) {
      const size_t half = (count + 1) / 2;
      const size_t pairs = count - half;
      ASSERT_TRUE(ParallelFor(
                      pairs,
                      [&](size_t i) -> Status {
                        shards[i].MergeFrom(std::move(shards[i + half]));
                        return Status::OK();
                      },
                      parallel)
                      .ok());
      count = half;
    }
    shards.front().SortBySequence();
    EXPECT_EQ(shards.front().costs(), reference.costs()) << "rep=" << rep;
    EXPECT_EQ(shards.front().payloads(), reference.payloads())
        << "rep=" << rep;
  }
}

}  // namespace
}  // namespace midas
