// Readers pinning estimator snapshots while writers advance epochs: every
// reader must observe a self-consistent (features, model, window) triple no
// matter how the threads interleave. Exercised at 1/4/16 reader threads and
// run under tsan by scripts/check.sh; iteration counts are deliberately
// small so the sanitizer suite stays fast.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ires/modelling.h"

namespace midas {
namespace {

// The writer only ever appends observations obeying cost = 3x + 7 for
// scope "w0" and cost = 5x + 1 for "w1"; a reader seeing anything else has
// caught a torn window.
double TrueCost(const std::string& scope, double x) {
  return scope == "w0" ? 3.0 * x + 7.0 : 5.0 * x + 1.0;
}

class SnapshotConcurrencyTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotConcurrencyTest, ReadersSeeConsistentTriples) {
  const int n_readers = GetParam();
  constexpr int kRecordsPerWriter = 120;
  Modelling modelling({"x"}, {"seconds"});

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  // Two writer threads, each owning one scope (the publisher serializes
  // the actual epoch publication; what's under test is reader isolation).
  auto writer = [&](const std::string& scope, uint64_t stride) {
    for (int i = 0; i < kRecordsPerWriter; ++i) {
      const double x = 1.0 + (i % 13) + 0.1 * static_cast<double>(stride);
      Observation obs;
      obs.timestamp = i;
      obs.features = {x};
      obs.costs = {TrueCost(scope, x)};
      if (!modelling.Record(scope, std::move(obs)).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  auto reader = [&] {
    const EstimatorConfig dream = EstimatorConfig::DreamDefault();
    uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::shared_ptr<const EstimatorSnapshot> snap = modelling.Snapshot();
      // Publication order: epochs are monotone across re-acquisitions.
      if (snap->epoch() < last_epoch) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      last_epoch = snap->epoch();
      for (const std::string scope : {"w0", "w1"}) {
        auto window = snap->Window(scope);
        if (!window.ok()) continue;  // scope not yet published
        const TrainingSet& frozen = **window;
        // (1) The frozen window is internally consistent: every
        // observation obeys the writer's ground-truth line, and the size
        // agrees with SizeOf.
        if (frozen.size() != snap->SizeOf(scope)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        for (size_t i = 0; i < frozen.size(); ++i) {
          if (frozen.at(i).costs[0] !=
              TrueCost(scope, frozen.at(i).features[0])) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        // (2) The model is fitted against exactly that window: predicting
        // twice through the pinned snapshot is bit-identical (memoised
        // deterministic fit), regardless of concurrent publications.
        const Vector probe = {4.0};
        auto first = modelling.Predict(*snap, scope, probe, dream);
        auto second = modelling.Predict(*snap, scope, probe, dream);
        if (first.ok() != second.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        } else if (first.ok() && (*first)[0] != (*second)[0]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // (3) The pinned epoch never moves.
        if (snap->epoch() != last_epoch) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(n_readers);
  for (int r = 0; r < n_readers; ++r) readers.emplace_back(reader);
  std::thread w0(writer, "w0", 0);
  std::thread w1(writer, "w1", 1);
  w0.join();
  w1.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Both writers' batches landed: one epoch per successful Record.
  EXPECT_EQ(modelling.publisher().epoch(),
            static_cast<uint64_t>(2 * kRecordsPerWriter));
  EXPECT_EQ(modelling.publisher().history().SizeOf("w0"),
            static_cast<size_t>(kRecordsPerWriter));
  EXPECT_EQ(modelling.publisher().history().SizeOf("w1"),
            static_cast<size_t>(kRecordsPerWriter));
}

INSTANTIATE_TEST_SUITE_P(Readers, SnapshotConcurrencyTest,
                         ::testing::Values(1, 4, 16));

TEST(SnapshotBatchAtomicityTest, RecordBatchIsAtomicToReaders) {
  // Readers must never observe a partially applied batch: sizes only move
  // in multiples of the batch size.
  constexpr int kBatches = 60;
  constexpr size_t kBatchSize = 5;
  Modelling modelling({"x"}, {"seconds"});
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto snap = modelling.Snapshot();
      if (snap->SizeOf("q") % kBatchSize != 0) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int b = 0; b < kBatches; ++b) {
    std::vector<SnapshotPublisher::ScopedObservation> batch;
    for (size_t k = 0; k < kBatchSize; ++k) {
      Observation obs;
      obs.timestamp = b;
      obs.features = {1.0 * b + 0.01 * static_cast<double>(k)};
      obs.costs = {1.0};
      batch.push_back({"q", std::move(obs)});
    }
    ASSERT_TRUE(modelling.RecordBatch(std::move(batch)).ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(modelling.publisher().epoch(), static_cast<uint64_t>(kBatches));
  EXPECT_EQ(modelling.publisher().history().SizeOf("q"), kBatches * kBatchSize);
}

}  // namespace
}  // namespace midas
