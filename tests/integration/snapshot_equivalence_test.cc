// Serial equivalence of the snapshot prediction path and the mutable live
// path: at the same estimator state, pinning a snapshot must change NOTHING
// about the numbers — predictions, diagnostics and whole optimizations are
// bit-identical. This is what licenses routing concurrent readers through
// snapshots without re-validating the paper's results.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/simulator.h"
#include "ires/features.h"
#include "ires/modelling.h"
#include "ires/moo_optimizer.h"
#include "ires/scheduler.h"

namespace midas {
namespace {

std::unique_ptr<Modelling> MakeTrainedModelling(int observations,
                                                uint64_t seed = 17) {
  auto modelling = std::make_unique<Modelling>(
      std::vector<std::string>{"x1", "x2"},
      std::vector<std::string>{"seconds", "dollars"});
  Rng rng(seed);
  for (int i = 0; i < observations; ++i) {
    const double x1 = rng.Uniform(1, 10);
    const double x2 = rng.Uniform(1, 10);
    Observation obs;
    obs.timestamp = i;
    obs.features = {x1, x2};
    obs.costs = {2 + 3 * x1 + x2 + rng.Gaussian(0, 0.4),
                 0.1 + 0.02 * x1 + rng.Gaussian(0, 0.01)};
    modelling->Record("q", std::move(obs)).CheckOK();
  }
  return modelling;
}

std::vector<EstimatorConfig> AllEstimators() {
  return {
      EstimatorConfig::DreamDefault(),
      EstimatorConfig::Bml(WindowPolicy::kLastN),
      EstimatorConfig::Bml(WindowPolicy::kLast2N),
      EstimatorConfig::Bml(WindowPolicy::kAll),
  };
}

TEST(SnapshotEquivalenceTest, PredictMatchesLivePathBitwise) {
  auto modelling_ptr = MakeTrainedModelling(30);
  Modelling& modelling = *modelling_ptr;
  auto snapshot = modelling.Snapshot();
  Rng rng(23);
  for (const EstimatorConfig& config : AllEstimators()) {
    for (int p = 0; p < 5; ++p) {
      const Vector probe = {rng.Uniform(1, 10), rng.Uniform(1, 10)};
      auto live = modelling.Predict("q", probe, config);
      auto frozen = modelling.Predict(*snapshot, "q", probe, config);
      ASSERT_TRUE(live.ok()) << EstimatorName(config);
      ASSERT_TRUE(frozen.ok()) << EstimatorName(config);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(*live, *frozen) << EstimatorName(config);
    }
  }
}

TEST(SnapshotEquivalenceTest, PredictBatchMatchesLivePathBitwise) {
  auto modelling_ptr = MakeTrainedModelling(25);
  Modelling& modelling = *modelling_ptr;
  auto snapshot = modelling.Snapshot();
  Rng rng(29);
  Matrix probes(7, 2);
  for (size_t r = 0; r < probes.rows(); ++r) {
    probes.SetRow(r, {rng.Uniform(1, 10), rng.Uniform(1, 10)});
  }
  for (const EstimatorConfig& config : AllEstimators()) {
    auto live = modelling.PredictBatch("q", probes, config);
    auto frozen = modelling.PredictBatch(*snapshot, "q", probes, config);
    ASSERT_TRUE(live.ok()) << EstimatorName(config);
    ASSERT_TRUE(frozen.ok()) << EstimatorName(config);
    for (size_t r = 0; r < probes.rows(); ++r) {
      for (size_t c = 0; c < 2u; ++c) {
        EXPECT_EQ((*live)(r, c), (*frozen)(r, c)) << EstimatorName(config);
      }
    }
  }
}

TEST(SnapshotEquivalenceTest, DreamDiagnosticsMatchLivePath) {
  auto modelling_ptr = MakeTrainedModelling(30);
  Modelling& modelling = *modelling_ptr;
  auto snapshot = modelling.Snapshot();
  DreamOptions options;
  auto live = modelling.DreamDiagnostics("q", options);
  auto frozen = modelling.DreamDiagnostics(*snapshot, "q", options);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(live->window_size, frozen->window_size);
  ASSERT_EQ(live->models.size(), frozen->models.size());
  for (size_t m = 0; m < live->models.size(); ++m) {
    EXPECT_EQ(live->models[m].r_squared(), frozen->models[m].r_squared());
  }
}

TEST(SnapshotEquivalenceTest, ErrorsMatchLivePathVerbatim) {
  auto modelling_ptr = MakeTrainedModelling(30);
  Modelling& modelling = *modelling_ptr;
  auto snapshot = modelling.Snapshot();
  const EstimatorConfig config = EstimatorConfig::DreamDefault();
  // Unknown scope.
  const Status live_missing =
      modelling.Predict("nope", {1.0, 1.0}, config).status();
  const Status frozen_missing =
      modelling.Predict(*snapshot, "nope", {1.0, 1.0}, config).status();
  EXPECT_EQ(live_missing.code(), frozen_missing.code());
  EXPECT_EQ(live_missing.message(), frozen_missing.message());
  // Wrong arity.
  const Status live_arity = modelling.Predict("q", {1.0}, config).status();
  const Status frozen_arity =
      modelling.Predict(*snapshot, "q", {1.0}, config).status();
  EXPECT_EQ(live_arity.code(), frozen_arity.code());
  EXPECT_EQ(live_arity.message(), frozen_arity.message());
}

// ---------------------------------------------------------------------------
// Whole-pipeline equivalence: an Optimize driven by snapshot-pinned
// predictions must reproduce the live-path optimization exactly.

struct Environment {
  Federation federation;
  Catalog catalog;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = 8;
  const SiteId site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 8;
  const SiteId site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 100.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network().SetSymmetricLink(site_a, site_b, wan).CheckOK();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 200000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 200000},
                {"pay", ColumnType::kString, 72.0, 200000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 5000;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 5000}};
  env.catalog.AddTable(t2).CheckOK();
  env.federation.PlaceTable("t1", site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", site_b, EngineKind::kPostgres).CheckOK();
  return env;
}

QueryPlan LogicalJoin() {
  return QueryPlan(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id", "id"));
}

SimulatorOptions Deterministic() {
  SimulatorOptions options;
  options.stochastic = false;
  options.variance = VarianceOptions{};
  options.variance.drift_amplitude = 0.0;
  options.variance.ar_sigma = 0.0;
  options.variance.noise_sigma = 0.0;
  return options;
}

TEST(SnapshotEquivalenceTest, OptimizeOverSnapshotReproducesLivePath) {
  Environment env = MakeEnvironment();
  ExecutionSimulator simulator(&env.federation, &env.catalog,
                               Deterministic());
  Modelling modelling(FeatureNames(env.federation), StandardMetricNames());
  Scheduler scheduler(&env.federation, &simulator, &modelling);
  const std::string scope = "join";

  // Warm the history over a spread of plans so DREAM has signal.
  EnumeratorOptions enum_opts;
  PlanEnumerator enumerator(&env.federation, &env.catalog, enum_opts);
  auto plans = enumerator.EnumeratePhysical(LogicalJoin()).ValueOrDie();
  Rng rng(41);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        scheduler.ExecuteAndRecord(scope, plans[rng.Index(plans.size())])
            .ok());
  }

  const EstimatorConfig estimator = EstimatorConfig::DreamDefault();
  auto snapshot = modelling.Snapshot();
  auto live_predictor = [&](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Vector x,
                           ExtractFeatures(env.federation, plan));
    return modelling.Predict(scope, x, estimator);
  };
  auto snapshot_predictor = [&](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Vector x,
                           ExtractFeatures(env.federation, plan));
    return modelling.Predict(*snapshot, scope, x, estimator);
  };

  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog);
  QueryPolicy policy;
  policy.weights = {0.6, 0.4};
  auto live = optimizer.Optimize(LogicalJoin(), live_predictor, policy);
  auto frozen = optimizer.Optimize(LogicalJoin(), snapshot_predictor, policy,
                                   snapshot->epoch());
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(live->candidates_examined, frozen->candidates_examined);
  EXPECT_EQ(live->chosen, frozen->chosen);
  ASSERT_EQ(live->pareto_costs.size(), frozen->pareto_costs.size());
  for (size_t i = 0; i < live->pareto_costs.size(); ++i) {
    EXPECT_EQ(live->pareto_costs[i], frozen->pareto_costs[i]);
  }
  EXPECT_EQ(live->snapshot_epoch, 0u);  // unversioned legacy caller
  EXPECT_EQ(frozen->snapshot_epoch, snapshot->epoch());
}

TEST(SnapshotEquivalenceTest, CachedCostsNeverCrossEpochs) {
  Environment env = MakeEnvironment();
  ExecutionSimulator simulator(&env.federation, &env.catalog,
                               Deterministic());
  Modelling modelling(FeatureNames(env.federation), StandardMetricNames());
  Scheduler scheduler(&env.federation, &simulator, &modelling);
  const std::string scope = "join";
  EnumeratorOptions enum_opts;
  PlanEnumerator enumerator(&env.federation, &env.catalog, enum_opts);
  auto plans = enumerator.EnumeratePhysical(LogicalJoin()).ValueOrDie();
  Rng rng(43);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(
        scheduler.ExecuteAndRecord(scope, plans[rng.Index(plans.size())])
            .ok());
  }

  const EstimatorConfig estimator = EstimatorConfig::DreamDefault();
  MoqpOptions moqp;
  moqp.cache_predictions = true;
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog, moqp);
  QueryPolicy policy;
  policy.weights = {0.6, 0.4};

  auto make_predictor = [&](std::shared_ptr<const EstimatorSnapshot> snap) {
    return [&, snap](const QueryPlan& plan) -> StatusOr<Vector> {
      MIDAS_ASSIGN_OR_RETURN(Vector x,
                             ExtractFeatures(env.federation, plan));
      return modelling.Predict(*snap, scope, x, estimator);
    };
  };

  auto first_snapshot = modelling.Snapshot();
  auto first = optimizer.Optimize(LogicalJoin(),
                                  make_predictor(first_snapshot), policy,
                                  first_snapshot->epoch());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache_hits, 0u);
  EXPECT_GT(first->cache_misses, 0u);
  // With caching on, every miss is one predictor call and hits+misses
  // covers exactly the distinct feature vectors (aggregation invariant
  // shared by the scalar, batched and streaming paths).
  EXPECT_EQ(first->predictor_calls, first->cache_misses);
  EXPECT_EQ(first->snapshot_epoch, first_snapshot->epoch());

  // Same snapshot again: all warm.
  auto warm = optimizer.Optimize(LogicalJoin(),
                                 make_predictor(first_snapshot), policy,
                                 first_snapshot->epoch());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_misses, 0u);
  EXPECT_EQ(warm->predictor_calls, 0u);
  EXPECT_EQ(warm->cache_hits, first->cache_misses);

  // New feedback -> new epoch -> the warm entries must NOT be served.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        scheduler.ExecuteAndRecord(scope, plans[rng.Index(plans.size())])
            .ok());
  }
  auto second_snapshot = modelling.Snapshot();
  ASSERT_GT(second_snapshot->epoch(), first_snapshot->epoch());
  auto second = optimizer.Optimize(LogicalJoin(),
                                   make_predictor(second_snapshot), policy,
                                   second_snapshot->epoch());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache_hits, 0u);
  EXPECT_EQ(second->predictor_calls, second->cache_misses);
  EXPECT_EQ(second->snapshot_epoch, second_snapshot->epoch());
}

}  // namespace
}  // namespace midas
