#include "ires/cost_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(FeatureCostCacheTest, MissThenInsertThenHit) {
  FeatureCostCache cache;
  const Vector key = {64.0, 4.0, 128.0, 2.0};
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.Insert(key, {10.0, 0.5});
  EXPECT_EQ(cache.size(), 1u);
  const auto cached = cache.Lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, (Vector{10.0, 0.5}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FeatureCostCacheTest, DistinctFeaturesNeverShareEntries) {
  FeatureCostCache cache;
  // Keys differing in any coordinate — including by tiny deltas and in
  // length — must map to independent entries.
  const std::vector<Vector> keys = {
      {1.0, 2.0},
      {1.0, 2.0000000001},
      {2.0, 1.0},
      {1.0, 2.0, 0.0},
      {},
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    cache.Insert(keys[i], {static_cast<double>(i)});
  }
  EXPECT_EQ(cache.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto cached = cache.Lookup(keys[i]);
    ASSERT_TRUE(cached.has_value()) << "key " << i;
    EXPECT_EQ((*cached)[0], static_cast<double>(i));
  }
}

TEST(FeatureCostCacheTest, NegativeZeroAliasesPositiveZero) {
  // -0.0 == 0.0 under Vector's operator==, so VectorHash must agree and
  // the two spellings must share one entry.
  FeatureCostCache cache;
  cache.Insert({0.0, 1.0}, {7.0});
  const auto cached = cache.Lookup({-0.0, 1.0});
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ((*cached)[0], 7.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FeatureCostCacheTest, FirstWriterWinsOnDuplicateInsert) {
  FeatureCostCache cache;
  cache.Insert({1.0}, {1.0});
  cache.Insert({1.0}, {2.0});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ((*cache.Lookup({1.0}))[0], 1.0);
}

TEST(FeatureCostCacheTest, ClearResetsEntriesAndCounters) {
  FeatureCostCache cache;
  cache.Insert({1.0}, {1.0});
  cache.Lookup({1.0});
  cache.Lookup({2.0});
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.Lookup({1.0}).has_value());
}

TEST(FeatureCostCacheTest, ConcurrentInsertAndLookup) {
  FeatureCostCache cache;
  constexpr int kThreads = 4;
  constexpr int kKeys = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int k = 0; k < kKeys; ++k) {
        const Vector key = {static_cast<double>(k)};
        cache.Insert(key, {static_cast<double>(k) * 2.0});
        const auto cached = cache.Lookup(key);
        ASSERT_TRUE(cached.has_value());
        EXPECT_EQ((*cached)[0], static_cast<double>(k) * 2.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kKeys);
}

TEST(FeatureCostCacheTest, EpochsNeverShareEntries) {
  // A cost predicted against snapshot epoch N must not answer a lookup
  // pinned to any other epoch, even for the same feature vector.
  FeatureCostCache cache;
  const Vector key = {64.0, 4.0};
  cache.Insert(key, {10.0, 0.5}, /*epoch=*/1);
  EXPECT_FALSE(cache.Lookup(key, /*epoch=*/2).has_value());
  EXPECT_FALSE(cache.Lookup(key, /*epoch=*/0).has_value());
  const auto cached = cache.Lookup(key, /*epoch=*/1);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, (Vector{10.0, 0.5}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);

  cache.Insert(key, {99.0, 9.9}, /*epoch=*/2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ((*cache.Lookup(key, 2))[0], 99.0);
  EXPECT_EQ((*cache.Lookup(key, 1))[0], 10.0);
}

TEST(FeatureCostCacheTest, NamespacesNeverShareEntries) {
  // Two tenants pinned to the SAME epoch map one feature vector to
  // different costs (each tenant's estimator is fitted on its own history
  // scope) — the per-scope namespace keeps their entries apart.
  FeatureCostCache cache;
  const Vector key = {64.0, 4.0};
  cache.Insert(key, {10.0, 0.5}, /*epoch=*/7, /*cache_namespace=*/1);
  EXPECT_FALSE(cache.Lookup(key, 7, /*cache_namespace=*/2).has_value());
  EXPECT_FALSE(cache.Lookup(key, 7, /*cache_namespace=*/0).has_value());
  EXPECT_EQ((*cache.Lookup(key, 7, 1))[0], 10.0);

  cache.Insert(key, {99.0, 9.9}, /*epoch=*/7, /*cache_namespace=*/2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ((*cache.Lookup(key, 7, 1))[0], 10.0);
  EXPECT_EQ((*cache.Lookup(key, 7, 2))[0], 99.0);

  // Epoch pruning cuts across namespaces: superseded epochs vanish for
  // every tenant at once.
  cache.Insert(key, {1.0, 1.0}, /*epoch=*/8, /*cache_namespace=*/1);
  EXPECT_EQ(cache.PruneOtherEpochs(8), 2u);
  EXPECT_FALSE(cache.Lookup(key, 7, 1).has_value());
  EXPECT_EQ((*cache.Lookup(key, 8, 1))[0], 1.0);
}

TEST(FeatureCostCacheTest, DefaultEpochMatchesLegacyCalls) {
  // Unversioned callers (no epoch argument) keep the old behaviour.
  FeatureCostCache cache;
  cache.Insert({1.0}, {5.0});
  EXPECT_EQ((*cache.Lookup({1.0}, /*epoch=*/0))[0], 5.0);
  EXPECT_EQ((*cache.Lookup({1.0}))[0], 5.0);
}

TEST(FeatureCostCacheTest, PruneOtherEpochsKeepsCountersCumulative) {
  FeatureCostCache cache;
  for (int k = 0; k < 10; ++k) {
    cache.Insert({static_cast<double>(k)}, {1.0}, /*epoch=*/1);
    cache.Insert({static_cast<double>(k)}, {2.0}, /*epoch=*/2);
  }
  EXPECT_EQ(cache.size(), 20u);
  cache.Lookup({0.0}, 1);  // hit
  cache.Lookup({-1.0}, 1);  // miss
  const uint64_t hits_before = cache.hits();
  const uint64_t misses_before = cache.misses();

  EXPECT_EQ(cache.PruneOtherEpochs(2), 10u);
  EXPECT_EQ(cache.size(), 10u);
  // Counters survive the prune (cumulative across the cache's lifetime).
  EXPECT_EQ(cache.hits(), hits_before);
  EXPECT_EQ(cache.misses(), misses_before);
  EXPECT_EQ(cache.pruned(), 10u);
  EXPECT_FALSE(cache.Lookup({0.0}, 1).has_value());
  EXPECT_EQ((*cache.Lookup({0.0}, 2))[0], 2.0);
}

TEST(FeatureCostCacheTest, PrunedCounterAccumulatesAcrossPrunes) {
  FeatureCostCache cache;
  cache.Insert({1.0}, {1.0}, /*epoch=*/1);
  cache.Insert({2.0}, {2.0}, /*epoch=*/2);
  cache.Insert({3.0}, {3.0}, /*epoch=*/3);
  EXPECT_EQ(cache.PruneOtherEpochs(2), 2u);
  EXPECT_EQ(cache.pruned(), 2u);
  // Pruning to the already-kept epoch evicts nothing.
  EXPECT_EQ(cache.PruneOtherEpochs(2), 0u);
  EXPECT_EQ(cache.pruned(), 2u);
  cache.Insert({4.0}, {4.0}, /*epoch=*/4);
  EXPECT_EQ(cache.PruneOtherEpochs(4), 1u);
  EXPECT_EQ(cache.pruned(), 3u);
  cache.Clear();
  EXPECT_EQ(cache.pruned(), 0u);
}

TEST(FeatureCostCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FeatureCostCache(0).num_shards(), 1u);
  EXPECT_EQ(FeatureCostCache(1).num_shards(), 1u);
  EXPECT_EQ(FeatureCostCache(3).num_shards(), 4u);
  EXPECT_EQ(FeatureCostCache(8).num_shards(), 8u);
  EXPECT_EQ(FeatureCostCache(9).num_shards(), 16u);
  EXPECT_EQ(FeatureCostCache().num_shards(), FeatureCostCache::kDefaultShards);
}

TEST(FeatureCostCacheTest, BehaviourIdenticalAcrossShardCounts) {
  // Striping is an implementation detail: every observable (size, hit/miss
  // totals, lookup results) must be the same with 1 shard and with many.
  for (size_t shards : {size_t{1}, size_t{2}, size_t{16}, size_t{64}}) {
    FeatureCostCache cache(shards);
    for (int k = 0; k < 100; ++k) {
      const Vector key = {static_cast<double>(k), static_cast<double>(k % 7)};
      EXPECT_FALSE(cache.Lookup(key).has_value()) << shards;
      cache.Insert(key, {static_cast<double>(k) * 3.0});
    }
    EXPECT_EQ(cache.size(), 100u) << shards;
    EXPECT_EQ(cache.misses(), 100u) << shards;
    for (int k = 0; k < 100; ++k) {
      const Vector key = {static_cast<double>(k), static_cast<double>(k % 7)};
      const auto cached = cache.Lookup(key);
      ASSERT_TRUE(cached.has_value()) << shards;
      EXPECT_EQ((*cached)[0], static_cast<double>(k) * 3.0) << shards;
    }
    EXPECT_EQ(cache.hits(), 100u) << shards;
    cache.Clear();
    EXPECT_EQ(cache.size(), 0u) << shards;
    EXPECT_EQ(cache.hits(), 0u) << shards;
    EXPECT_EQ(cache.misses(), 0u) << shards;
  }
}

TEST(FeatureCostCacheTest, CountersSumExactlyAcrossShardsUnderHammering) {
  // Pre-populate, then hammer with read-only lookups from 8 threads: every
  // lookup of a present key must count exactly one hit, every absent key
  // exactly one miss, regardless of which shard it lands on.
  FeatureCostCache cache(8);
  constexpr int kKeys = 64;
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  for (int k = 0; k < kKeys; ++k) {
    cache.Insert({static_cast<double>(k)}, {static_cast<double>(k)});
  }
  const uint64_t seed_misses = cache.misses();  // 0: Insert doesn't count
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          ASSERT_TRUE(cache.Lookup({static_cast<double>(k)}).has_value());
          ASSERT_FALSE(
              cache.Lookup({static_cast<double>(k), -1.0}).has_value());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const uint64_t expected =
      static_cast<uint64_t>(kThreads) * kRounds * kKeys;
  EXPECT_EQ(cache.hits(), expected);
  EXPECT_EQ(cache.misses(), seed_misses + expected);
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
}

TEST(FeatureCostCacheTest, SingleShardConcurrentInsertStillSafe) {
  // Degenerate stripe count: everything funnels through one shard, which
  // must still be race-free (exercised under tsan).
  FeatureCostCache cache(1);
  constexpr int kThreads = 8;
  constexpr int kKeys = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int k = 0; k < kKeys; ++k) {
        const Vector key = {static_cast<double>(k)};
        cache.Insert(key, {static_cast<double>(k) + 0.5});
        const auto cached = cache.Lookup(key);
        ASSERT_TRUE(cached.has_value()) << t;
        EXPECT_EQ((*cached)[0], static_cast<double>(k) + 0.5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kKeys);
}

}  // namespace
}  // namespace midas
