#include "ires/cost_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(FeatureCostCacheTest, MissThenInsertThenHit) {
  FeatureCostCache cache;
  const Vector key = {64.0, 4.0, 128.0, 2.0};
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.Insert(key, {10.0, 0.5});
  EXPECT_EQ(cache.size(), 1u);
  const auto cached = cache.Lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, (Vector{10.0, 0.5}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FeatureCostCacheTest, DistinctFeaturesNeverShareEntries) {
  FeatureCostCache cache;
  // Keys differing in any coordinate — including by tiny deltas and in
  // length — must map to independent entries.
  const std::vector<Vector> keys = {
      {1.0, 2.0},
      {1.0, 2.0000000001},
      {2.0, 1.0},
      {1.0, 2.0, 0.0},
      {},
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    cache.Insert(keys[i], {static_cast<double>(i)});
  }
  EXPECT_EQ(cache.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto cached = cache.Lookup(keys[i]);
    ASSERT_TRUE(cached.has_value()) << "key " << i;
    EXPECT_EQ((*cached)[0], static_cast<double>(i));
  }
}

TEST(FeatureCostCacheTest, NegativeZeroAliasesPositiveZero) {
  // -0.0 == 0.0 under Vector's operator==, so VectorHash must agree and
  // the two spellings must share one entry.
  FeatureCostCache cache;
  cache.Insert({0.0, 1.0}, {7.0});
  const auto cached = cache.Lookup({-0.0, 1.0});
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ((*cached)[0], 7.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FeatureCostCacheTest, FirstWriterWinsOnDuplicateInsert) {
  FeatureCostCache cache;
  cache.Insert({1.0}, {1.0});
  cache.Insert({1.0}, {2.0});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ((*cache.Lookup({1.0}))[0], 1.0);
}

TEST(FeatureCostCacheTest, ClearResetsEntriesAndCounters) {
  FeatureCostCache cache;
  cache.Insert({1.0}, {1.0});
  cache.Lookup({1.0});
  cache.Lookup({2.0});
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.Lookup({1.0}).has_value());
}

TEST(FeatureCostCacheTest, ConcurrentInsertAndLookup) {
  FeatureCostCache cache;
  constexpr int kThreads = 4;
  constexpr int kKeys = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int k = 0; k < kKeys; ++k) {
        const Vector key = {static_cast<double>(k)};
        cache.Insert(key, {static_cast<double>(k) * 2.0});
        const auto cached = cache.Lookup(key);
        ASSERT_TRUE(cached.has_value());
        EXPECT_EQ((*cached)[0], static_cast<double>(k) * 2.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kKeys);
}

}  // namespace
}  // namespace midas
