#include "ires/features.h"

#include <gtest/gtest.h>

#include "query/enumerator.h"

namespace midas {
namespace {

struct Environment {
  Federation federation;
  Catalog catalog;
  SiteId site_a = 0;
  SiteId site_b = 0;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.large", 2, 4.0, 0.0, 0.0098};
  env.site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  env.site_b = env.federation.AddSite(b).ValueOrDie();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 1 << 20;  // 1 Mi rows x 8 bytes = 8 MiB
  t1.columns = {{"id", ColumnType::kInt, 8.0, 1u << 20}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 1 << 18;  // 2 MiB
  t2.columns = {{"id", ColumnType::kInt, 8.0, 1u << 18}};
  env.catalog.AddTable(t2).CheckOK();
  env.federation.PlaceTable("t1", env.site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", env.site_b, EngineKind::kPostgres)
      .CheckOK();
  return env;
}

QueryPlan AnnotatedJoin(const Environment& env, int nodes_a, int nodes_b,
                        SiteId join_site, EngineKind join_engine) {
  auto left = MakeScan("t1");
  left->site = env.site_a;
  left->engine = EngineKind::kHive;
  left->num_nodes = nodes_a;
  auto right = MakeScan("t2");
  right->site = env.site_b;
  right->engine = EngineKind::kPostgres;
  right->num_nodes = nodes_b;
  auto join = MakeJoin(std::move(left), std::move(right), "id", "id");
  join->site = join_site;
  join->engine = join_engine;
  join->num_nodes = join_site == env.site_a ? nodes_a : nodes_b;
  QueryPlan plan(std::move(join));
  EstimateCardinalities(env.catalog, &plan).CheckOK();
  return plan;
}

TEST(FeaturesTest, LayoutIsTwoPerSite) {
  Environment env = MakeEnvironment();
  const auto names = FeatureNames(env.federation);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "data_mib_A");
  EXPECT_EQ(names[1], "nodes_A");
  EXPECT_EQ(names[2], "data_mib_B");
  EXPECT_EQ(names[3], "nodes_B");
}

TEST(FeaturesTest, DataSizesPerSite) {
  Environment env = MakeEnvironment();
  QueryPlan plan =
      AnnotatedJoin(env, 2, 1, env.site_a, EngineKind::kHive);
  auto x = ExtractFeatures(env.federation, plan);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 8.0, 1e-9);  // t1 = 8 MiB at A
  EXPECT_NEAR((*x)[2], 2.0, 1e-9);  // t2 = 2 MiB at B
}

TEST(FeaturesTest, NodeCountsPerSite) {
  Environment env = MakeEnvironment();
  QueryPlan plan =
      AnnotatedJoin(env, 4, 2, env.site_b, EngineKind::kPostgres);
  auto x = ExtractFeatures(env.federation, plan);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[1], 4.0);
  EXPECT_DOUBLE_EQ((*x)[3], 2.0);
}

TEST(FeaturesTest, PartitionPruningShrinksDataFeature) {
  Environment env = MakeEnvironment();
  QueryPlan plan =
      AnnotatedJoin(env, 1, 1, env.site_a, EngineKind::kHive);
  // Prune t1's scan to a quarter.
  for (PlanNode* node : plan.MutableNodes()) {
    if (node->kind == OperatorKind::kScan && node->table == "t1") {
      node->scan_fraction = 0.25;
    }
  }
  EstimateCardinalities(env.catalog, &plan).CheckOK();
  auto x = ExtractFeatures(env.federation, plan);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-9);
}

TEST(FeaturesTest, ArityMatchesNamesForAnyFederation) {
  Environment env = MakeEnvironment();
  QueryPlan plan =
      AnnotatedJoin(env, 1, 1, env.site_a, EngineKind::kHive);
  auto x = ExtractFeatures(env.federation, plan);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), FeatureNames(env.federation).size());
}

TEST(FeaturesTest, UnannotatedPlanRejected) {
  Environment env = MakeEnvironment();
  QueryPlan logical(MakeScan("t1"));
  EXPECT_FALSE(ExtractFeatures(env.federation, logical).ok());
}

TEST(FeaturesTest, EmptyPlanRejected) {
  Environment env = MakeEnvironment();
  EXPECT_FALSE(ExtractFeatures(env.federation, QueryPlan()).ok());
}

TEST(FeaturesTest, MatchesExample21Arity) {
  // Example 2.1: x_Pa, x_Ge, x_nodeA, x_nodeB — four variables in a
  // two-site federation.
  Environment env = MakeEnvironment();
  EXPECT_EQ(FeatureNames(env.federation).size(), 4u);
}

}  // namespace
}  // namespace midas
