#include "ires/history.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

Observation MakeObs(int64_t t, double x, double c) {
  Observation obs;
  obs.timestamp = t;
  obs.features = {x};
  obs.costs = {c};
  return obs;
}

TEST(HistoryTest, RecordCreatesScopeOnFirstUse) {
  History history({"x"}, {"c"});
  EXPECT_EQ(history.SizeOf("q12"), 0u);
  ASSERT_TRUE(history.Record("q12", MakeObs(0, 1, 2)).ok());
  EXPECT_EQ(history.SizeOf("q12"), 1u);
}

TEST(HistoryTest, ScopesAreIndependent) {
  History history({"x"}, {"c"});
  ASSERT_TRUE(history.Record("a", MakeObs(0, 1, 2)).ok());
  ASSERT_TRUE(history.Record("b", MakeObs(0, 3, 4)).ok());
  EXPECT_EQ(history.SizeOf("a"), 1u);
  EXPECT_EQ(history.SizeOf("b"), 1u);
  EXPECT_DOUBLE_EQ((*history.Get("a"))->at(0).features[0], 1.0);
  EXPECT_DOUBLE_EQ((*history.Get("b"))->at(0).features[0], 3.0);
}

TEST(HistoryTest, GetUnknownScopeFails) {
  History history({"x"}, {"c"});
  EXPECT_FALSE(history.Get("missing").ok());
}

TEST(HistoryTest, RecordPropagatesArityErrors) {
  History history({"x", "y"}, {"c"});
  EXPECT_FALSE(history.Record("q", MakeObs(0, 1, 2)).ok());  // 1 feature
}

TEST(HistoryTest, RecordPropagatesTimestampErrors) {
  History history({"x"}, {"c"});
  ASSERT_TRUE(history.Record("q", MakeObs(10, 1, 2)).ok());
  EXPECT_FALSE(history.Record("q", MakeObs(5, 1, 2)).ok());
}

TEST(HistoryTest, ScopesListsAllKeys) {
  History history({"x"}, {"c"});
  history.Record("q12", MakeObs(0, 1, 1)).CheckOK();
  history.Record("q13", MakeObs(0, 1, 1)).CheckOK();
  EXPECT_EQ(history.Scopes(), (std::vector<std::string>{"q12", "q13"}));
}

TEST(HistoryTest, TrimAllPrunesEveryScope) {
  History history({"x"}, {"c"});
  for (int i = 0; i < 5; ++i) {
    history.Record("a", MakeObs(i, i, i)).CheckOK();
    history.Record("b", MakeObs(i, i, i)).CheckOK();
  }
  history.TrimAll(2);
  EXPECT_EQ(history.SizeOf("a"), 2u);
  EXPECT_EQ(history.SizeOf("b"), 2u);
}

TEST(HistoryTest, NamesExposed) {
  History history({"x1", "x2"}, {"time", "money"});
  EXPECT_EQ(history.feature_names().size(), 2u);
  EXPECT_EQ(history.metric_names()[1], "money");
}

}  // namespace
}  // namespace midas
