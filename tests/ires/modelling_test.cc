#include "ires/modelling.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "support/simd_testing.h"

namespace midas {
namespace {

// Fills a scope with a clean linear cost history: time = 5 + 2 x, money =
// 0.1 + 0.01 x.
void FillLinear(Modelling* modelling, const std::string& scope, size_t n,
                uint64_t seed = 3) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Observation obs;
    obs.timestamp = static_cast<int64_t>(i);
    const double x = rng.Uniform(0, 10);
    obs.features = {x};
    obs.costs = {5.0 + 2.0 * x, 0.1 + 0.01 * x};
    modelling->Record(scope, std::move(obs)).CheckOK();
  }
}

TEST(EstimatorConfigTest, Names) {
  EXPECT_EQ(EstimatorName(EstimatorConfig::DreamDefault()), "DREAM");
  EXPECT_EQ(EstimatorName(EstimatorConfig::Bml(WindowPolicy::kLastN)),
            "BML_N");
  EXPECT_EQ(EstimatorName(EstimatorConfig::Bml(WindowPolicy::kAll)), "BML");
}

TEST(ModellingTest, BaseWindowIsLPlusTwo) {
  Modelling modelling({"x1", "x2", "x3"}, {"time"});
  EXPECT_EQ(modelling.BaseWindow(), 5u);
}

TEST(ModellingTest, DreamPredictsLinearCosts) {
  Modelling modelling({"x"}, {"time", "money"});
  FillLinear(&modelling, "q", 20);
  auto pred = modelling.Predict("q", {4.0}, EstimatorConfig::DreamDefault());
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR((*pred)[0], 13.0, 0.1);
  EXPECT_NEAR((*pred)[1], 0.14, 0.01);
}

TEST(ModellingTest, BmlPredictsLinearCosts) {
  Modelling modelling({"x"}, {"time", "money"});
  FillLinear(&modelling, "q", 20);
  for (WindowPolicy policy :
       {WindowPolicy::kLastN, WindowPolicy::kLast2N, WindowPolicy::kLast3N,
        WindowPolicy::kAll}) {
    auto pred = modelling.Predict("q", {4.0}, EstimatorConfig::Bml(policy));
    ASSERT_TRUE(pred.ok()) << WindowPolicyName(policy);
    EXPECT_NEAR((*pred)[0], 13.0, 3.0) << WindowPolicyName(policy);
  }
}

TEST(ModellingTest, PredictUnknownScopeFails) {
  Modelling modelling({"x"}, {"time"});
  EXPECT_FALSE(
      modelling.Predict("nope", {1.0}, EstimatorConfig::DreamDefault()).ok());
}

TEST(ModellingTest, PredictArityMismatchFails) {
  Modelling modelling({"x"}, {"time", "money"});
  FillLinear(&modelling, "q", 10);
  EXPECT_FALSE(
      modelling.Predict("q", {1.0, 2.0}, EstimatorConfig::DreamDefault())
          .ok());
}

TEST(ModellingTest, TooLittleHistoryFails) {
  Modelling modelling({"x"}, {"time", "money"});
  FillLinear(&modelling, "q", 2);  // below N = 3
  EXPECT_FALSE(
      modelling.Predict("q", {1.0}, EstimatorConfig::DreamDefault()).ok());
  EXPECT_FALSE(
      modelling.Predict("q", {1.0}, EstimatorConfig::Bml(WindowPolicy::kLastN))
          .ok());
}

TEST(ModellingTest, PredictionsAreNonNegative) {
  // History with a steep negative slope would extrapolate below zero;
  // Modelling clamps because costs are physical quantities.
  Modelling modelling({"x"}, {"time"});
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    Observation obs;
    obs.timestamp = i;
    const double x = rng.Uniform(0, 1);
    obs.features = {x};
    obs.costs = {1.0 - 5.0 * x < 0 ? 0.0 : 1.0 - 5.0 * x};
    modelling.Record("q", std::move(obs)).CheckOK();
  }
  auto pred =
      modelling.Predict("q", {10.0}, EstimatorConfig::DreamDefault());
  ASSERT_TRUE(pred.ok());
  EXPECT_GE((*pred)[0], 0.0);
}

TEST(ModellingTest, DreamDiagnosticsReportWindow) {
  Modelling modelling({"x"}, {"time", "money"});
  FillLinear(&modelling, "q", 30);
  auto diag = modelling.DreamDiagnostics("q", DreamOptions());
  ASSERT_TRUE(diag.ok());
  EXPECT_GE(diag->window_size, 3u);
  EXPECT_LE(diag->window_size, 30u);
  EXPECT_EQ(diag->r_squared.size(), 2u);
}

TEST(ModellingTest, DreamRespectsMmaxThroughConfig) {
  Modelling modelling({"x"}, {"time", "money"});
  // Noisy history so DREAM wants to grow.
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    Observation obs;
    obs.timestamp = i;
    const double x = rng.Uniform(0, 10);
    obs.features = {x};
    obs.costs = {5.0 + 2.0 * x + rng.Gaussian(0, 10.0), 1.0};
    modelling.Record("q", std::move(obs)).CheckOK();
  }
  EstimatorConfig config = EstimatorConfig::DreamDefault();
  config.dream.r2_require = 0.999;
  config.dream.m_max = 6;
  auto diag = modelling.DreamDiagnostics("q", config.dream);
  ASSERT_TRUE(diag.ok());
  EXPECT_LE(diag->window_size, 6u);
}

TEST(ModellingTest, PredictBatchMatchesScalarForAllEstimators) {
  Modelling modelling({"x"}, {"time", "money"});
  // Mildly noisy so BML model selection has real work to do.
  Rng rng(43);
  for (int i = 0; i < 25; ++i) {
    Observation obs;
    obs.timestamp = i;
    const double x = rng.Uniform(0, 10);
    obs.features = {x};
    obs.costs = {5.0 + 2.0 * x + rng.Gaussian(0, 0.5),
                 0.1 + 0.01 * x + rng.Gaussian(0, 0.01)};
    modelling.Record("q", std::move(obs)).CheckOK();
  }
  std::vector<Vector> queries;
  for (int i = 0; i < 19; ++i) queries.push_back({rng.Uniform(-2, 12)});
  Matrix x = Matrix::FromRows(queries).ValueOrDie();
  std::vector<EstimatorConfig> configs = {
      EstimatorConfig::DreamDefault(), EstimatorConfig::Bml(WindowPolicy::kLastN),
      EstimatorConfig::Bml(WindowPolicy::kAll)};
  for (const EstimatorConfig& config : configs) {
    auto batch = modelling.PredictBatch("q", x, config);
    ASSERT_TRUE(batch.ok()) << EstimatorName(config);
    ASSERT_EQ(batch->rows(), queries.size()) << EstimatorName(config);
    ASSERT_EQ(batch->cols(), 2u) << EstimatorName(config);
    for (size_t i = 0; i < queries.size(); ++i) {
      const Vector scalar =
          modelling.Predict("q", queries[i], config).ValueOrDie();
      for (size_t k = 0; k < scalar.size(); ++k) {
        SCOPED_TRACE(std::string(EstimatorName(config)) + " row " +
                     std::to_string(i) + " metric " + std::to_string(k));
        MIDAS_EXPECT_SIMD_EQ(batch->At(i, k), scalar[k]);
      }
    }
  }
}

TEST(ModellingTest, PredictBatchErrorPaths) {
  Modelling modelling({"x"}, {"time", "money"});
  EXPECT_FALSE(
      modelling.PredictBatch("nope", Matrix({{1.0}}),
                             EstimatorConfig::DreamDefault())
          .ok());
  FillLinear(&modelling, "q", 10);
  EXPECT_FALSE(modelling
                   .PredictBatch("q", Matrix({{1.0, 2.0}}),
                                 EstimatorConfig::DreamDefault())
                   .ok());
  EXPECT_FALSE(modelling
                   .PredictBatch("q", Matrix({{1.0, 2.0}}),
                                 EstimatorConfig::Bml(WindowPolicy::kLastN))
                   .ok());
}

TEST(ModellingTest, HistoryAccessorExposesScopes) {
  Modelling modelling({"x"}, {"time", "money"});
  FillLinear(&modelling, "q12", 5);
  FillLinear(&modelling, "q13", 5);
  EXPECT_EQ(modelling.history().Scopes().size(), 2u);
  EXPECT_EQ(modelling.num_metrics(), 2u);
  EXPECT_EQ(modelling.num_features(), 1u);
}

}  // namespace
}  // namespace midas
