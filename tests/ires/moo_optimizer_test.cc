#include "ires/moo_optimizer.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "engine/simulator.h"
#include "optimizer/pareto.h"

namespace midas {
namespace {

struct Environment {
  Federation federation;
  Catalog catalog;
  SiteId site_a = 0;
  SiteId site_b = 0;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.xlarge", 4, 8.0, 0.0, 0.0197};
  a.max_nodes = 8;
  env.site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 8;
  env.site_b = env.federation.AddSite(b).ValueOrDie();
  NetworkLink wan;
  wan.bandwidth_mbps = 100.0;
  wan.egress_price_per_gib = 0.09;
  env.federation.network()
      .SetSymmetricLink(env.site_a, env.site_b, wan)
      .CheckOK();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 200000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 200000},
                {"pay", ColumnType::kString, 72.0, 200000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 5000;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 5000}};
  env.catalog.AddTable(t2).CheckOK();
  env.federation.PlaceTable("t1", env.site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", env.site_b, EngineKind::kPostgres)
      .CheckOK();
  return env;
}

QueryPlan LogicalJoin() {
  return QueryPlan(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id", "id"));
}

// Cost predictor backed by the deterministic simulator (oracle predictor).
MultiObjectiveOptimizer::CostPredictor OraclePredictor(
    ExecutionSimulator* sim) {
  return [sim](const QueryPlan& plan) -> StatusOr<Vector> {
    MIDAS_ASSIGN_OR_RETURN(Measurement m, sim->ExpectedCostAt(plan, 0));
    return Vector{m.seconds, m.dollars};
  };
}

SimulatorOptions Deterministic() {
  SimulatorOptions options;
  options.stochastic = false;
  options.variance = VarianceOptions{};
  options.variance.drift_amplitude = 0.0;
  options.variance.ar_sigma = 0.0;
  options.variance.noise_sigma = 0.0;
  return options;
}

// Synthetic linear batch predictor: a pure, thread-safe function of the
// feature rows, as the batched/streaming pipelines require.
MultiObjectiveOptimizer::BatchCostPredictor LinearBatchPredictor() {
  return [](const Matrix& features, Matrix* costs) -> Status {
    *costs = Matrix(features.rows(), 2, 0.0);
    for (size_t r = 0; r < features.rows(); ++r) {
      double time = 1.0;
      double money = 0.1;
      for (size_t c = 0; c < features.cols(); ++c) {
        time += (0.3 + 0.05 * c) * features(r, c);
        money += 0.01 * features(r, c);
      }
      (*costs)(r, 0) = time;
      (*costs)(r, 1) = money;
    }
    return Status::OK();
  };
}

TEST(MoqpTest, ExhaustiveParetoReturnsNonDominatedSet) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog);
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto result = optimizer.Optimize(LogicalJoin(),
                                   OraclePredictor(&sim), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->candidates_examined, 10u);
  ASSERT_FALSE(result->pareto_costs.empty());
  for (size_t i = 0; i < result->pareto_costs.size(); ++i) {
    for (size_t j = 0; j < result->pareto_costs.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          Dominates(result->pareto_costs[i], result->pareto_costs[j]));
    }
  }
  EXPECT_LT(result->chosen, result->pareto_plans.size());
}

TEST(MoqpTest, ParetoCostsAreDeduplicated) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog);
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto result = optimizer.Optimize(LogicalJoin(),
                                   OraclePredictor(&sim), policy);
  ASSERT_TRUE(result.ok());
  std::set<Vector> unique(result->pareto_costs.begin(),
                          result->pareto_costs.end());
  EXPECT_EQ(unique.size(), result->pareto_costs.size());
}

TEST(MoqpTest, WeightsChangeChosenPlan) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog);
  QueryPolicy time_first;
  time_first.weights = {1.0, 0.0};
  QueryPolicy money_first;
  money_first.weights = {0.0, 1.0};
  auto fast = optimizer.Optimize(LogicalJoin(), OraclePredictor(&sim),
                                 time_first);
  auto cheap = optimizer.Optimize(LogicalJoin(), OraclePredictor(&sim),
                                  money_first);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(cheap.ok());
  EXPECT_LE(fast->chosen_costs()[0], cheap->chosen_costs()[0]);
  EXPECT_GE(fast->chosen_costs()[1], cheap->chosen_costs()[1]);
}

TEST(MoqpTest, WsmReturnsSinglePlan) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  MoqpOptions options;
  options.algorithm = MoqpAlgorithm::kWsm;
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog, options);
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto result = optimizer.Optimize(LogicalJoin(),
                                   OraclePredictor(&sim), policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pareto_plans.size(), 1u);
  EXPECT_EQ(result->chosen, 0u);
}

TEST(MoqpTest, NsgaVariantsFindSubsetOfExhaustiveFront) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};

  MultiObjectiveOptimizer exhaustive(&env.federation, &env.catalog);
  auto full = exhaustive.Optimize(LogicalJoin(), OraclePredictor(&sim),
                                  policy);
  ASSERT_TRUE(full.ok());
  std::set<Vector> full_front(full->pareto_costs.begin(),
                              full->pareto_costs.end());

  for (MoqpAlgorithm algorithm :
       {MoqpAlgorithm::kNsga2, MoqpAlgorithm::kNsgaG}) {
    MoqpOptions options;
    options.algorithm = algorithm;
    options.nsga2.population_size = 40;
    options.nsga2.generations = 40;
    options.nsga_g.population_size = 40;
    options.nsga_g.generations = 40;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    auto result = optimizer.Optimize(LogicalJoin(),
                                     OraclePredictor(&sim), policy);
    ASSERT_TRUE(result.ok()) << MoqpAlgorithmName(algorithm);
    EXPECT_FALSE(result->pareto_costs.empty());
    // Every evolved front point must be a true candidate cost vector, and
    // non-dominated within itself.
    for (size_t i = 0; i < result->pareto_costs.size(); ++i) {
      for (size_t j = 0; j < result->pareto_costs.size(); ++j) {
        if (i != j) {
          EXPECT_FALSE(Dominates(result->pareto_costs[i],
                                 result->pareto_costs[j]));
        }
      }
    }
  }
}

TEST(MoqpTest, ConstraintsRouteThroughBestInPareto) {
  Environment env = MakeEnvironment();
  ExecutionSimulator sim(&env.federation, &env.catalog, Deterministic());
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog);
  QueryPolicy policy;
  policy.weights = {1.0, 0.0};

  // First find the overall cost range, then constrain money to the median.
  auto unconstrained = optimizer.Optimize(
      LogicalJoin(), OraclePredictor(&sim), policy);
  ASSERT_TRUE(unconstrained.ok());
  double max_money = 0.0;
  for (const Vector& c : unconstrained->pareto_costs) {
    max_money = std::max(max_money, c[1]);
  }
  policy.constraints = {1e12, max_money * 0.5};
  auto constrained = optimizer.Optimize(
      LogicalJoin(), OraclePredictor(&sim), policy);
  ASSERT_TRUE(constrained.ok());
  EXPECT_LE(constrained->chosen_costs()[1], max_money * 0.5 + 1e-12);
}

TEST(MoqpTest, StreamingMatchesMaterializedAcrossChunkSizes) {
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  MultiObjectiveOptimizer baseline_opt(&env.federation, &env.catalog);
  auto baseline =
      baseline_opt.Optimize(LogicalJoin(), LinearBatchPredictor(), policy);
  ASSERT_TRUE(baseline.ok());
  // The materialized path holds the whole candidate set at once.
  EXPECT_EQ(baseline->peak_resident_candidates,
            baseline->candidates_examined);

  for (size_t chunk :
       {size_t{0}, size_t{1}, size_t{7}, size_t{100000}}) {
    MoqpOptions options;
    options.stream_chunk_size = chunk;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    auto streamed = optimizer.OptimizeStreaming(
        LogicalJoin(), LinearBatchPredictor(), policy);
    ASSERT_TRUE(streamed.ok()) << "chunk=" << chunk;
    EXPECT_EQ(streamed->pareto_costs, baseline->pareto_costs)
        << "chunk=" << chunk;
    EXPECT_EQ(streamed->chosen, baseline->chosen) << "chunk=" << chunk;
    EXPECT_EQ(streamed->candidates_examined, baseline->candidates_examined)
        << "chunk=" << chunk;
    ASSERT_EQ(streamed->pareto_plans.size(), baseline->pareto_plans.size())
        << "chunk=" << chunk;
    for (size_t i = 0; i < streamed->pareto_plans.size(); ++i) {
      EXPECT_EQ(streamed->pareto_plans[i].ToString(),
                baseline->pareto_plans[i].ToString())
          << "chunk=" << chunk << " plan " << i;
    }
    EXPECT_LE(streamed->peak_resident_candidates,
              baseline->peak_resident_candidates)
        << "chunk=" << chunk;
    if (chunk == 1) {
      // O(front + chunk) beats O(candidates) once chunks are small.
      EXPECT_LT(streamed->peak_resident_candidates,
                baseline->peak_resident_candidates);
    }
  }
}

TEST(MoqpTest, StreamingFallsBackForNonStreamableAlgorithms) {
  // kWsm normalises over the full candidate set and the NSGA variants
  // evolve over the full cost table, so OptimizeStreaming must delegate
  // to the materialized path and return its exact result.
  Environment env = MakeEnvironment();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  for (MoqpAlgorithm algorithm :
       {MoqpAlgorithm::kWsm, MoqpAlgorithm::kNsga2}) {
    MoqpOptions options;
    options.algorithm = algorithm;
    options.nsga2.population_size = 20;
    options.nsga2.generations = 10;
    MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog,
                                      options);
    auto materialized =
        optimizer.Optimize(LogicalJoin(), LinearBatchPredictor(), policy);
    auto streamed = optimizer.OptimizeStreaming(
        LogicalJoin(), LinearBatchPredictor(), policy);
    ASSERT_TRUE(materialized.ok()) << MoqpAlgorithmName(algorithm);
    ASSERT_TRUE(streamed.ok()) << MoqpAlgorithmName(algorithm);
    EXPECT_EQ(streamed->pareto_costs, materialized->pareto_costs)
        << MoqpAlgorithmName(algorithm);
    EXPECT_EQ(streamed->chosen, materialized->chosen)
        << MoqpAlgorithmName(algorithm);
    // The fallback materialises the full candidate set.
    EXPECT_EQ(streamed->peak_resident_candidates,
              streamed->candidates_examined)
        << MoqpAlgorithmName(algorithm);
  }
}

TEST(MoqpTest, NullPredictorRejected) {
  Environment env = MakeEnvironment();
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog);
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  EXPECT_FALSE(optimizer
                   .Optimize(LogicalJoin(),
                             MultiObjectiveOptimizer::CostPredictor(nullptr),
                             policy)
                   .ok());
  EXPECT_FALSE(
      optimizer
          .Optimize(LogicalJoin(),
                    MultiObjectiveOptimizer::BatchCostPredictor(nullptr),
                    policy)
          .ok());
  EXPECT_FALSE(
      optimizer
          .OptimizeStreaming(
              LogicalJoin(),
              MultiObjectiveOptimizer::BatchCostPredictor(nullptr), policy)
          .ok());
}

TEST(MoqpTest, PredictorArityMismatchRejected) {
  Environment env = MakeEnvironment();
  MultiObjectiveOptimizer optimizer(&env.federation, &env.catalog);
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto bad_predictor = [](const QueryPlan&) -> StatusOr<Vector> {
    return Vector{1.0};  // one metric, policy expects two
  };
  EXPECT_FALSE(optimizer.Optimize(LogicalJoin(), bad_predictor, policy).ok());
}

TEST(MoqpAlgorithmTest, Names) {
  EXPECT_EQ(MoqpAlgorithmName(MoqpAlgorithm::kExhaustivePareto),
            "exhaustive-pareto");
  EXPECT_EQ(MoqpAlgorithmName(MoqpAlgorithm::kNsga2), "nsga2");
  EXPECT_EQ(MoqpAlgorithmName(MoqpAlgorithm::kNsgaG), "nsga-g");
  EXPECT_EQ(MoqpAlgorithmName(MoqpAlgorithm::kWsm), "wsm");
}

}  // namespace
}  // namespace midas
