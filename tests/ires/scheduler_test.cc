#include "ires/scheduler.h"

#include <gtest/gtest.h>

#include "ires/features.h"
#include "query/enumerator.h"

namespace midas {
namespace {

struct Harness {
  Federation federation;
  Catalog catalog;
  std::unique_ptr<ExecutionSimulator> simulator;
  std::unique_ptr<Modelling> modelling;

  Harness() {
    SiteConfig a;
    a.name = "A";
    a.engines = {EngineKind::kHive};
    a.node_type = {ProviderKind::kAmazon, "a1.large", 2, 4.0, 0.0, 0.0098};
    federation.AddSite(a).ValueOrDie();
    TableDef t;
    t.name = "t";
    t.row_count = 10000;
    t.columns = {{"id", ColumnType::kInt, 8.0, 10000}};
    catalog.AddTable(t).CheckOK();
    federation.PlaceTable("t", 0, EngineKind::kHive).CheckOK();
    simulator = std::make_unique<ExecutionSimulator>(&federation, &catalog);
    modelling = std::make_unique<Modelling>(FeatureNames(federation),
                                            StandardMetricNames());
  }

  QueryPlan AnnotatedScan(int nodes = 1) {
    auto scan = MakeScan("t");
    scan->site = 0;
    scan->engine = EngineKind::kHive;
    scan->num_nodes = nodes;
    return QueryPlan(std::move(scan));
  }
};

TEST(MeasurementToCostsTest, PacksSecondsAndDollars) {
  Measurement m;
  m.seconds = 12.5;
  m.dollars = 0.04;
  EXPECT_EQ(MeasurementToCosts(m), (Vector{12.5, 0.04}));
}

TEST(StandardMetricNamesTest, MatchesLayout) {
  EXPECT_EQ(StandardMetricNames(),
            (std::vector<std::string>{"seconds", "dollars"}));
}

TEST(SchedulerTest, ExecuteOnlyDoesNotRecord) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  ASSERT_TRUE(scheduler.ExecuteOnly(h.AnnotatedScan()).ok());
  EXPECT_EQ(h.modelling->history().SizeOf("s"), 0u);
}

TEST(SchedulerTest, ExecuteAndRecordFeedsHistory) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  auto m = scheduler.ExecuteAndRecord("s", h.AnnotatedScan());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(h.modelling->history().SizeOf("s"), 1u);
  const TrainingSet* set = h.modelling->history().Get("s").ValueOrDie();
  EXPECT_EQ(set->at(0).costs[0], m->seconds);
  EXPECT_EQ(set->at(0).costs[1], m->dollars);
  EXPECT_EQ(set->at(0).timestamp, m->timestamp);
}

TEST(SchedulerTest, TimestampsGrowAcrossExecutions) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  auto m0 = scheduler.ExecuteAndRecord("s", h.AnnotatedScan());
  auto m1 = scheduler.ExecuteAndRecord("s", h.AnnotatedScan());
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  EXPECT_LT(m0->timestamp, m1->timestamp);
}

TEST(SchedulerTest, FeaturesReflectPlanConfiguration) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  scheduler.ExecuteAndRecord("s", h.AnnotatedScan(2)).status().CheckOK();
  const TrainingSet* set = h.modelling->history().Get("s").ValueOrDie();
  // Features layout for a 1-site federation: {data_mib, nodes}.
  EXPECT_DOUBLE_EQ(set->at(0).features[1], 2.0);
}

TEST(SchedulerTest, UnwiredSchedulerFails) {
  Harness h;
  Scheduler no_sim(&h.federation, nullptr, h.modelling.get());
  EXPECT_FALSE(no_sim.ExecuteOnly(h.AnnotatedScan()).ok());
  EXPECT_FALSE(no_sim.ExecuteAndRecord("s", h.AnnotatedScan()).ok());
  Scheduler no_model(&h.federation, h.simulator.get(), nullptr);
  EXPECT_FALSE(no_model.ExecuteAndRecord("s", h.AnnotatedScan()).ok());
}

TEST(SchedulerTest, BatchWriteReportsPublicationEpochAndLatency) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  const uint64_t before = h.modelling->publisher().epoch();
  auto result = scheduler.ExecuteAndRecordBatch(
      "s", {h.AnnotatedScan(), h.AnnotatedScan(2), h.AnnotatedScan(3)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->measurements.size(), 3u);
  // The whole batch lands under exactly one published epoch, and the
  // result says which so the writer can correlate feedback with the
  // snapshot readers will pin.
  EXPECT_TRUE(result->published);
  EXPECT_EQ(result->published_epoch, before + 1);
  EXPECT_EQ(h.modelling->publisher().epoch(), before + 1);
  EXPECT_GE(result->publish_seconds, 0.0);
  EXPECT_EQ(h.modelling->history().SizeOf("s"), 3u);
}

TEST(SchedulerTest, EmptyBatchPublishesNothing) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  scheduler.ExecuteAndRecord("s", h.AnnotatedScan()).status().CheckOK();
  const uint64_t before = h.modelling->publisher().epoch();
  auto result = scheduler.ExecuteAndRecordBatch("s", {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->measurements.empty());
  EXPECT_FALSE(result->published);
  EXPECT_EQ(result->published_epoch, before);
  EXPECT_DOUBLE_EQ(result->publish_seconds, 0.0);
  EXPECT_EQ(h.modelling->publisher().epoch(), before);
}

TEST(SchedulerTest, BatchStopsAtFirstFailureButRecordsPrefix) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  QueryPlan unannotated(MakeScan("t"));
  auto result = scheduler.ExecuteAndRecordBatch(
      "s", {h.AnnotatedScan(), unannotated, h.AnnotatedScan(2)});
  // The failing plan surfaces as the batch error, but the already-executed
  // prefix is real feedback and was recorded atomically.
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(h.modelling->history().SizeOf("s"), 1u);
}

TEST(SchedulerTest, RecordingFailureDoesNotCorruptHistory) {
  Harness h;
  Scheduler scheduler(&h.federation, h.simulator.get(), h.modelling.get());
  QueryPlan unannotated(MakeScan("t"));
  EXPECT_FALSE(scheduler.ExecuteAndRecord("s", unannotated).ok());
  EXPECT_EQ(h.modelling->history().SizeOf("s"), 0u);
}

}  // namespace
}  // namespace midas
