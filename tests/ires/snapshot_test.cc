#include "ires/snapshot.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace midas {
namespace {

Observation Obs(double x, double cost) {
  Observation obs;
  obs.features = {x};
  obs.costs = {cost};
  return obs;
}

SnapshotPublisher MakePublisher() {
  return SnapshotPublisher({"x"}, {"seconds"});
}

TEST(SnapshotPublisherTest, InitialSnapshotIsEmptyEpochZero) {
  SnapshotPublisher publisher = MakePublisher();
  EXPECT_EQ(publisher.epoch(), 0u);
  auto snapshot = publisher.Acquire();
  EXPECT_EQ(snapshot->epoch(), 0u);
  EXPECT_TRUE(snapshot->Scopes().empty());
  EXPECT_EQ(snapshot->SizeOf("q1"), 0u);
  EXPECT_EQ(snapshot->num_features(), 1u);
  EXPECT_EQ(snapshot->metric_names()[0], "seconds");
  EXPECT_FALSE(snapshot->Window("q1").ok());
}

TEST(SnapshotPublisherTest, MissingScopeMatchesLiveHistoryVerbatim) {
  // The snapshot path must answer exactly like the live History so the
  // two prediction paths are interchangeable, error text included.
  SnapshotPublisher publisher = MakePublisher();
  const Status live = publisher.history().Get("nope").status();
  const Status frozen = publisher.Acquire()->Window("nope").status();
  EXPECT_EQ(live.code(), frozen.code());
  EXPECT_EQ(live.message(), frozen.message());
}

TEST(SnapshotPublisherTest, EveryRecordPublishesASuccessorEpoch) {
  SnapshotPublisher publisher = MakePublisher();
  ASSERT_TRUE(publisher.Record("q1", Obs(1.0, 10.0)).ok());
  EXPECT_EQ(publisher.epoch(), 1u);
  ASSERT_TRUE(publisher.Record("q1", Obs(2.0, 20.0)).ok());
  EXPECT_EQ(publisher.epoch(), 2u);
  auto snapshot = publisher.Acquire();
  EXPECT_EQ(snapshot->epoch(), 2u);
  EXPECT_EQ(snapshot->SizeOf("q1"), 2u);
}

TEST(SnapshotPublisherTest, RecordBatchPublishesExactlyOneEpoch) {
  SnapshotPublisher publisher = MakePublisher();
  std::vector<SnapshotPublisher::ScopedObservation> batch;
  batch.push_back({"q1", Obs(1.0, 10.0)});
  batch.push_back({"q1", Obs(2.0, 20.0)});
  batch.push_back({"q2", Obs(3.0, 30.0)});
  ASSERT_TRUE(publisher.RecordBatch(std::move(batch)).ok());
  EXPECT_EQ(publisher.epoch(), 1u);
  auto snapshot = publisher.Acquire();
  EXPECT_EQ(snapshot->SizeOf("q1"), 2u);
  EXPECT_EQ(snapshot->SizeOf("q2"), 1u);
}

TEST(SnapshotPublisherTest, RecordBatchReportsThePublishedEpoch) {
  SnapshotPublisher publisher = MakePublisher();
  ASSERT_TRUE(publisher.Record("q1", Obs(1.0, 10.0)).ok());
  std::vector<SnapshotPublisher::ScopedObservation> batch;
  batch.push_back({"q1", Obs(2.0, 20.0)});
  batch.push_back({"q1", Obs(3.0, 30.0)});
  uint64_t epoch = 0;
  ASSERT_TRUE(publisher.RecordBatch(std::move(batch), &epoch).ok());
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(publisher.epoch(), 2u);
  // An empty batch publishes nothing and reports the standing epoch.
  uint64_t unchanged = 99;
  ASSERT_TRUE(publisher.RecordBatch({}, &unchanged).ok());
  EXPECT_EQ(unchanged, 2u);
}

TEST(SnapshotPublisherTest, PublishListenersFireOnEveryPublication) {
  SnapshotPublisher publisher = MakePublisher();
  std::vector<uint64_t> seen;
  publisher.AddPublishListener(
      [&seen](uint64_t epoch) { seen.push_back(epoch); });
  ASSERT_TRUE(publisher.Record("q1", Obs(1.0, 10.0)).ok());
  std::vector<SnapshotPublisher::ScopedObservation> batch;
  batch.push_back({"q1", Obs(2.0, 20.0)});
  batch.push_back({"q2", Obs(3.0, 30.0)});
  ASSERT_TRUE(publisher.RecordBatch(std::move(batch)).ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));
  // An empty batch publishes nothing, so no notification fires.
  ASSERT_TRUE(publisher.RecordBatch({}).ok());
  EXPECT_EQ(seen.size(), 2u);
  // The dirty MutableHistory republish (folded into Acquire) is a
  // publication too.
  publisher.MutableHistory();
  auto snapshot = publisher.Acquire();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.back(), snapshot->epoch());
}

TEST(SnapshotPublisherTest, ListenerMayAcquireWithoutDeadlock) {
  SnapshotPublisher publisher = MakePublisher();
  uint64_t pinned_epoch = 0;
  publisher.AddPublishListener([&](uint64_t epoch) {
    auto snapshot = publisher.Acquire();  // must not self-deadlock
    EXPECT_EQ(snapshot->epoch(), epoch);
    pinned_epoch = snapshot->epoch();
  });
  ASSERT_TRUE(publisher.Record("q1", Obs(1.0, 10.0)).ok());
  EXPECT_EQ(pinned_epoch, 1u);
}

TEST(SnapshotPublisherTest, PinnedSnapshotNeverSeesLaterRecords) {
  SnapshotPublisher publisher = MakePublisher();
  ASSERT_TRUE(publisher.Record("q1", Obs(1.0, 10.0)).ok());
  auto pinned = publisher.Acquire();
  ASSERT_TRUE(publisher.Record("q1", Obs(2.0, 20.0)).ok());
  ASSERT_TRUE(publisher.Record("q2", Obs(3.0, 30.0)).ok());
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->SizeOf("q1"), 1u);
  EXPECT_EQ(pinned->SizeOf("q2"), 0u);
  const TrainingSet* frozen = pinned->Window("q1").ValueOrDie();
  EXPECT_DOUBLE_EQ(frozen->at(0).features[0], 1.0);
  // The writer meanwhile moved on.
  EXPECT_EQ(publisher.Acquire()->SizeOf("q1"), 2u);
}

TEST(SnapshotPublisherTest, UntouchedScopesCarryOverBetweenEpochs) {
  SnapshotPublisher publisher = MakePublisher();
  ASSERT_TRUE(publisher.Record("stable", Obs(1.0, 10.0)).ok());
  ASSERT_TRUE(publisher.Record("hot", Obs(2.0, 20.0)).ok());
  auto before = publisher.Acquire();
  ASSERT_TRUE(publisher.Record("hot", Obs(3.0, 30.0)).ok());
  auto after = publisher.Acquire();
  // Structural sharing: the untouched scope's frozen state is the SAME
  // object (fit memos ride along); the touched scope was rebuilt.
  EXPECT_EQ(before->Window("stable").ValueOrDie(),
            after->Window("stable").ValueOrDie());
  EXPECT_NE(before->Window("hot").ValueOrDie(),
            after->Window("hot").ValueOrDie());
}

TEST(SnapshotPublisherTest, FailedAddStillCreatesTheScopeLikeHistoryDoes) {
  // History::Record creates the scope before validating the observation;
  // the snapshot must mirror the (empty) scope so later queries agree.
  SnapshotPublisher publisher = MakePublisher();
  Observation bad;
  bad.features = {1.0, 2.0};  // arity mismatch
  bad.costs = {1.0};
  EXPECT_FALSE(publisher.Record("q1", std::move(bad)).ok());
  const bool live_has_scope = publisher.history().Get("q1").ok();
  auto snapshot = publisher.Acquire();
  EXPECT_EQ(snapshot->Window("q1").ok(), live_has_scope);
  EXPECT_EQ(snapshot->SizeOf("q1"), publisher.history().SizeOf("q1"));
}

TEST(SnapshotPublisherTest, MutableHistoryTriggersFullRepublish) {
  SnapshotPublisher publisher = MakePublisher();
  ASSERT_TRUE(publisher.Record("q1", Obs(1.0, 10.0)).ok());
  ASSERT_TRUE(publisher.Record("q1", Obs(2.0, 20.0)).ok());
  const uint64_t epoch_before = publisher.epoch();
  publisher.MutableHistory().TrimAll(1);
  auto snapshot = publisher.Acquire();
  EXPECT_GT(snapshot->epoch(), epoch_before);
  EXPECT_EQ(snapshot->SizeOf("q1"), 1u);
  EXPECT_DOUBLE_EQ(
      snapshot->Window("q1").ValueOrDie()->at(0).features[0], 2.0);
  // Re-acquiring without new writes does not mint new epochs.
  EXPECT_EQ(publisher.Acquire()->epoch(), snapshot->epoch());
}

TEST(EstimatorSnapshotTest, DreamFitIsMemoisedPerConfiguration) {
  SnapshotPublisher publisher = MakePublisher();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        publisher.Record("q1", Obs(1.0 * i, 2.0 * i + 1.0)).ok());
  }
  auto snapshot = publisher.Acquire();
  DreamOptions options;
  auto first = snapshot->DreamFit("q1", options);
  ASSERT_TRUE(first.ok());
  auto second = snapshot->DreamFit("q1", options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same fit object, no refit

  DreamOptions other = options;
  other.r2_require = 0.5;
  auto third = snapshot->DreamFit("q1", other);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first->get(), third->get());  // distinct configuration
}

TEST(EstimatorSnapshotTest, DreamFitCarriesOverForUntouchedScopes) {
  SnapshotPublisher publisher = MakePublisher();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        publisher.Record("stable", Obs(1.0 * i, 2.0 * i + 1.0)).ok());
  }
  auto before = publisher.Acquire();
  auto fit_before = before->DreamFit("stable", DreamOptions());
  ASSERT_TRUE(fit_before.ok());
  ASSERT_TRUE(publisher.Record("other", Obs(1.0, 1.0)).ok());
  auto after = publisher.Acquire();
  auto fit_after = after->DreamFit("stable", DreamOptions());
  ASSERT_TRUE(fit_after.ok());
  // The delta replay touched only "other": the already-computed DREAM fit
  // keeps serving the next epoch's readers.
  EXPECT_EQ(fit_before->get(), fit_after->get());
}

TEST(EstimatorSnapshotTest, BmlFitterRunsOncePerKey) {
  SnapshotPublisher publisher = MakePublisher();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(publisher.Record("q1", Obs(1.0 * i, 3.0 * i)).ok());
  }
  auto snapshot = publisher.Acquire();
  int calls = 0;
  auto fitter = [&calls](const TrainingSet& set) -> StatusOr<BmlScopeFit> {
    ++calls;
    BmlScopeFit fit;
    fit.names.push_back("stub-" + std::to_string(set.size()));
    return fit;
  };
  auto first = snapshot->BmlFit("q1", "BML_N", fitter);
  ASSERT_TRUE(first.ok());
  auto second = snapshot->BmlFit("q1", "BML_N", fitter);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ((*first)->names[0], "stub-5");

  auto other_key = snapshot->BmlFit("q1", "BML_2N", fitter);
  ASSERT_TRUE(other_key.ok());
  EXPECT_EQ(calls, 2);
}

TEST(EstimatorSnapshotTest, FitErrorsAreNotMemoised) {
  SnapshotPublisher publisher = MakePublisher();
  ASSERT_TRUE(publisher.Record("q1", Obs(1.0, 1.0)).ok());
  auto snapshot = publisher.Acquire();
  int calls = 0;
  auto failing = [&calls](const TrainingSet&) -> StatusOr<BmlScopeFit> {
    ++calls;
    return Status::FailedPrecondition("not enough history");
  };
  EXPECT_FALSE(snapshot->BmlFit("q1", "BML_N", failing).ok());
  EXPECT_FALSE(snapshot->BmlFit("q1", "BML_N", failing).ok());
  EXPECT_EQ(calls, 2);  // errors are retried, not cached
}

}  // namespace
}  // namespace midas
