#include "ires/workflow.h"

#include <limits>

#include <gtest/gtest.h>

namespace midas {
namespace {

// A 4-operator pipeline: ingest -> clean -> (aggregate, train) with all
// three engines available everywhere.
WorkflowDag MakePipeline() {
  WorkflowDag dag;
  const std::vector<EngineKind> all = {EngineKind::kHive,
                                       EngineKind::kPostgres,
                                       EngineKind::kSpark};
  const size_t ingest = dag.AddOperator("ingest", {}, all).ValueOrDie();
  const size_t clean = dag.AddOperator("clean", {ingest}, all).ValueOrDie();
  dag.AddOperator("aggregate", {clean}, all).ValueOrDie();
  dag.AddOperator("train", {clean}, all).ValueOrDie();
  return dag;
}

// Engine-biased costs: Spark fast/expensive, PostgreSQL slow/cheap.
StatusOr<Vector> EngineCost(size_t, EngineKind engine) {
  switch (engine) {
    case EngineKind::kSpark:
      return Vector{1.0, 3.0};
    case EngineKind::kHive:
      return Vector{2.0, 2.0};
    case EngineKind::kPostgres:
      return Vector{4.0, 1.0};
  }
  return Status::Internal("unreachable");
}

StatusOr<Vector> UnitTransfer(size_t, EngineKind, size_t, EngineKind) {
  return Vector{0.5, 0.1};
}

QueryPolicy Balanced() {
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  return policy;
}

TEST(WorkflowDagTest, AddOperatorValidatesInputs) {
  WorkflowDag dag;
  EXPECT_TRUE(dag.AddOperator("a", {}, {EngineKind::kHive}).ok());
  EXPECT_FALSE(dag.AddOperator("b", {5}, {EngineKind::kHive}).ok());
  EXPECT_FALSE(dag.AddOperator("c", {}, {}).ok());
}

TEST(WorkflowDagTest, SinksAreUnconsumedOperators) {
  WorkflowDag dag = MakePipeline();
  EXPECT_EQ(dag.Sinks(), (std::vector<size_t>{2, 3}));
}

TEST(WorkflowDagTest, TopologicalOrderIsInsertionOrder) {
  WorkflowDag dag = MakePipeline();
  EXPECT_EQ(dag.TopologicalOrder(), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(WorkflowDagTest, ValidateRejectsEmpty) {
  WorkflowDag dag;
  EXPECT_FALSE(dag.Validate().ok());
}

TEST(WorkflowOptimizerTest, ExhaustiveSearchCoversSpace) {
  WorkflowDag dag = MakePipeline();
  WorkflowOptimizer optimizer;
  auto result =
      optimizer.Optimize(dag, EngineCost, UnitTransfer, Balanced());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments_examined, 81u);  // 3^4
  ASSERT_FALSE(result->pareto_costs.empty());
  EXPECT_LT(result->chosen, result->pareto_costs.size());
}

TEST(WorkflowOptimizerTest, ExtremesOfTheFrontAreSingleEngine) {
  // With uniform per-engine costs and positive transfer penalties, the
  // all-Spark assignment is the time extreme and all-PostgreSQL the money
  // extreme.
  WorkflowDag dag = MakePipeline();
  WorkflowOptimizer optimizer;
  auto result =
      optimizer.Optimize(dag, EngineCost, UnitTransfer, Balanced());
  ASSERT_TRUE(result.ok());
  double best_time = std::numeric_limits<double>::infinity();
  double best_money = std::numeric_limits<double>::infinity();
  for (const Vector& c : result->pareto_costs) {
    best_time = std::min(best_time, c[0]);
    best_money = std::min(best_money, c[1]);
  }
  EXPECT_DOUBLE_EQ(best_time, 4.0);   // 4 ops x 1.0, no transfers
  EXPECT_DOUBLE_EQ(best_money, 4.0);  // 4 ops x 1.0, no transfers
}

TEST(WorkflowOptimizerTest, TransferPenaltyDiscouragesEngineChurn) {
  WorkflowDag dag = MakePipeline();
  WorkflowOptimizer optimizer;
  // Make transfers brutally expensive: every Pareto assignment collapses
  // to a single engine.
  auto heavy_transfer = [](size_t, EngineKind, size_t,
                           EngineKind) -> StatusOr<Vector> {
    return Vector{100.0, 100.0};
  };
  auto result =
      optimizer.Optimize(dag, EngineCost, heavy_transfer, Balanced());
  ASSERT_TRUE(result.ok());
  for (const WorkflowAssignment& a : result->pareto_assignments) {
    for (EngineKind e : a.engine_per_op) {
      EXPECT_EQ(e, a.engine_per_op[0]);
    }
  }
}

TEST(WorkflowOptimizerTest, ConstraintSteersChoice) {
  WorkflowDag dag = MakePipeline();
  WorkflowOptimizer optimizer;
  QueryPolicy policy;
  policy.weights = {1.0, 0.0};      // fastest...
  policy.constraints = {1e9, 5.0};  // ...costing at most 5
  auto result = optimizer.Optimize(dag, EngineCost, UnitTransfer, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->pareto_costs[result->chosen][1], 5.0);
}

TEST(WorkflowOptimizerTest, RestrictedEnginesRespected) {
  WorkflowDag dag;
  const size_t a =
      dag.AddOperator("pg-only", {}, {EngineKind::kPostgres}).ValueOrDie();
  dag.AddOperator("spark-only", {a}, {EngineKind::kSpark}).ValueOrDie();
  WorkflowOptimizer optimizer;
  auto result =
      optimizer.Optimize(dag, EngineCost, UnitTransfer, Balanced());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->pareto_assignments.size(), 1u);
  EXPECT_EQ(result->chosen_assignment().engine_per_op[0],
            EngineKind::kPostgres);
  EXPECT_EQ(result->chosen_assignment().engine_per_op[1],
            EngineKind::kSpark);
}

TEST(WorkflowOptimizerTest, LargeSpaceFallsBackToNsga2) {
  // 12 operators x 3 engines = 531,441 assignments > default limit.
  WorkflowDag dag;
  const std::vector<EngineKind> all = {EngineKind::kHive,
                                       EngineKind::kPostgres,
                                       EngineKind::kSpark};
  size_t previous = dag.AddOperator("op0", {}, all).ValueOrDie();
  for (int i = 1; i < 12; ++i) {
    previous =
        dag.AddOperator("op" + std::to_string(i), {previous}, all)
            .ValueOrDie();
  }
  WorkflowOptimizer::Options options;
  options.exhaustive_limit = 1000;
  options.nsga2_population = 100;
  options.nsga2_generations = 150;
  WorkflowOptimizer optimizer(options);
  auto result =
      optimizer.Optimize(dag, EngineCost, UnitTransfer, Balanced());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->pareto_costs.empty());
  // The GA cannot guarantee the exact single-engine extreme (time 12) in
  // a 3^12 discrete space, but it must get well below a random
  // assignment's expected time (~28 + transfer penalties).
  double best_time = std::numeric_limits<double>::infinity();
  for (const Vector& c : result->pareto_costs) {
    best_time = std::min(best_time, c[0]);
  }
  EXPECT_LE(best_time, 20.0);
}

TEST(WorkflowOptimizerTest, NullCallbacksRejected) {
  WorkflowDag dag = MakePipeline();
  WorkflowOptimizer optimizer;
  EXPECT_FALSE(
      optimizer.Optimize(dag, nullptr, UnitTransfer, Balanced()).ok());
  EXPECT_FALSE(
      optimizer.Optimize(dag, EngineCost, nullptr, Balanced()).ok());
}

TEST(WorkflowOptimizerTest, CostArityMismatchRejected) {
  WorkflowDag dag = MakePipeline();
  WorkflowOptimizer optimizer;
  auto bad_cost = [](size_t, EngineKind) -> StatusOr<Vector> {
    return Vector{1.0};  // policy expects 2 metrics
  };
  EXPECT_FALSE(
      optimizer.Optimize(dag, bad_cost, UnitTransfer, Balanced()).ok());
}

}  // namespace
}  // namespace midas
