#include "linalg/decomposition.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tol) {
  auto diff = a.MaxAbsDiff(b);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(*diff, tol);
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.At(i, j) = rng->Uniform(-2.0, 2.0);
  }
  return m;
}

TEST(HouseholderQrTest, ReconstructsInput) {
  Rng rng(5);
  const Matrix a = RandomMatrix(6, 4, &rng);
  auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  ExpectMatrixNear(qr->q.Multiply(qr->r).ValueOrDie(), a, 1e-10);
}

TEST(HouseholderQrTest, QHasOrthonormalColumns) {
  Rng rng(6);
  const Matrix a = RandomMatrix(8, 3, &rng);
  auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  const Matrix qtq = qr->q.Transpose().Multiply(qr->q).ValueOrDie();
  ExpectMatrixNear(qtq, Matrix::Identity(3), 1e-10);
}

TEST(HouseholderQrTest, RIsUpperTriangular) {
  Rng rng(7);
  const Matrix a = RandomMatrix(5, 5, &rng);
  auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  for (size_t i = 1; i < 5; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(qr->r.At(i, j), 0.0, 1e-12);
    }
  }
}

TEST(HouseholderQrTest, RejectsWideMatrix) {
  EXPECT_FALSE(HouseholderQr(Matrix(2, 3)).ok());
}

TEST(HouseholderQrTest, RejectsRankDeficient) {
  // Two identical columns.
  Matrix a({{1, 1}, {2, 2}, {3, 3}});
  EXPECT_FALSE(HouseholderQr(a).ok());
}

TEST(SolveUpperTriangularTest, SolvesKnownSystem) {
  Matrix r({{2, 1}, {0, 4}});
  auto x = SolveUpperTriangular(r, {4, 8});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
}

TEST(SolveUpperTriangularTest, RejectsSingular) {
  Matrix r({{1, 1}, {0, 0}});
  EXPECT_FALSE(SolveUpperTriangular(r, {1, 1}).ok());
}

TEST(LeastSquaresSolveTest, ExactSystem) {
  Matrix a({{1, 0}, {0, 1}, {1, 1}});
  // b generated from x = (2, 3).
  auto x = LeastSquaresSolve(a, {2, 3, 5});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(LeastSquaresSolveTest, MinimisesResidual) {
  // Overdetermined inconsistent system: best fit of y = c over {1, 3}.
  Matrix a({{1}, {1}});
  auto x = LeastSquaresSolve(a, {1, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
}

TEST(PivotedQrTest, FullRankMatchesDirectSolve) {
  Rng rng(8);
  const Matrix a = RandomMatrix(7, 4, &rng);
  Vector b(7);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  auto x1 = LeastSquaresSolve(a, b);
  auto x2 = PivotedLeastSquaresSolve(a, b);
  ASSERT_TRUE(x1.ok());
  ASSERT_TRUE(x2.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR((*x1)[i], (*x2)[i], 1e-8);
  }
}

TEST(PivotedQrTest, DetectsRank) {
  // Third column = first + second.
  Matrix a({{1, 0, 1}, {0, 1, 1}, {1, 1, 2}, {2, 1, 3}});
  auto qr = HouseholderQrPivoted(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->rank, 2u);
}

TEST(PivotedQrTest, SolvesRankDeficientSystem) {
  // Column 2 duplicates column 1; solution puts weight on one of them
  // and still reproduces b.
  Matrix a({{1, 1}, {2, 2}, {3, 3}});
  Vector b = {2, 4, 6};
  auto x = PivotedLeastSquaresSolve(a, b);
  ASSERT_TRUE(x.ok());
  auto fitted = a.MultiplyVector(*x);
  ASSERT_TRUE(fitted.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*fitted)[i], b[i], 1e-10);
  }
}

TEST(PivotedQrTest, ConstantColumnHandled) {
  // Second column constant (collinear with an implicit intercept usage).
  Matrix a({{1, 5, 2}, {1, 5, 3}, {1, 5, 4}, {1, 5, 7}});
  Vector b = {4, 6, 8, 14};  // = 2 * col3
  auto x = PivotedLeastSquaresSolve(a, b);
  ASSERT_TRUE(x.ok());
  auto fitted = a.MultiplyVector(*x);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR((*fitted)[i], b[i], 1e-9);
  }
}

TEST(PivotedQrTest, ZeroMatrixFails) {
  EXPECT_FALSE(PivotedLeastSquaresSolve(Matrix(3, 2), {1, 2, 3}).ok());
}

TEST(CholeskyTest, FactorisesSpdMatrix) {
  Matrix a({{4, 2}, {2, 3}});
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  const Matrix llt = l->Multiply(l->Transpose()).ValueOrDie();
  ExpectMatrixNear(llt, a, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(CholeskySolveTest, SolvesSpdSystem) {
  Matrix a({{4, 2}, {2, 3}});
  // b = A * (1, 2).
  auto x = CholeskySolve(a, {8, 8});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SpdInverseTest, InverseTimesMatrixIsIdentity) {
  Matrix a({{4, 2}, {2, 3}});
  auto inv = SpdInverse(a);
  ASSERT_TRUE(inv.ok());
  ExpectMatrixNear(a.Multiply(*inv).ValueOrDie(), Matrix::Identity(2),
                   1e-10);
}

TEST(CholeskyFactorIntoTest, MatchesAllocatingFactor) {
  Matrix a({{6, 2, 1}, {2, 5, 2}, {1, 2, 4}});
  Matrix buffer;
  ASSERT_TRUE(CholeskyFactorInto(a, &buffer).ok());
  auto fresh = CholeskyFactor(a);
  ASSERT_TRUE(fresh.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(buffer.At(i, j), fresh->At(i, j), 1e-12);
    }
  }
}

TEST(CholeskyFactorIntoTest, ReusesBufferAcrossCalls) {
  Rng rng(11);
  Matrix buffer;
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix x = RandomMatrix(8, 3, &rng);
    const Matrix gram = x.Gram();  // SPD with probability 1
    ASSERT_TRUE(CholeskyFactorInto(gram, &buffer).ok());
    Vector solved;
    ASSERT_TRUE(CholeskySolveFactored(buffer, {1.0, 2.0, 3.0}, &solved).ok());
    auto direct = CholeskySolve(gram, {1.0, 2.0, 3.0});
    ASSERT_TRUE(direct.ok());
    for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(solved[i], (*direct)[i], 1e-9);
  }
}

TEST(CholeskyFactorIntoTest, RejectsNumericallySingular) {
  // Two identical columns: the Gram matrix of [v v] is exactly singular.
  Matrix a({{4, 4}, {4, 4}});
  Matrix buffer;
  EXPECT_FALSE(CholeskyFactorInto(a, &buffer).ok());
}

TEST(CholeskyFactorIntoTest, RelativeToleranceScalesWithDiagonal) {
  // A matrix that is singular up to rounding but has a huge diagonal: an
  // absolute pivot floor would wrongly accept it.
  const double big = 1e12;
  Matrix a({{big, big}, {big, big}});
  Matrix buffer;
  EXPECT_FALSE(CholeskyFactorInto(a, &buffer).ok());
}

TEST(PivotedQrPropertyTest, RandomMatricesReconstruct) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t rows = 4 + rng.Index(8);
    const size_t cols = 1 + rng.Index(std::min<size_t>(rows, 5));
    const Matrix a = RandomMatrix(rows, cols, &rng);
    auto qr = HouseholderQrPivoted(a);
    ASSERT_TRUE(qr.ok());
    // Q R should equal A with columns permuted.
    const Matrix qr_prod = qr->q.Multiply(qr->r).ValueOrDie();
    for (size_t j = 0; j < cols; ++j) {
      const Vector original = a.Col(qr->permutation[j]);
      const Vector reconstructed = qr_prod.Col(j);
      for (size_t i = 0; i < rows; ++i) {
        EXPECT_NEAR(original[i], reconstructed[i], 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace midas
