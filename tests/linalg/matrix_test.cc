#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.Uniform(-10.0, 10.0);
  }
  return m;
}

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m({{1, 2}, {3, 4}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, FromColumn) {
  Matrix m = Matrix::FromColumn({1, 2, 3});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 3.0);
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (Vector{3, 6}));
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2);
  m.SetRow(0, {7, 8});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 8.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  EXPECT_EQ(t.Transpose(), m);
}

TEST(MatrixTest, Multiply) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  auto c = a.Multiply(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, Matrix({{19, 22}, {43, 50}}));
}

TEST(MatrixTest, MultiplyShapeMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a({{1, 2}, {3, 4}});
  auto y = a.MultiplyVector({1, 1});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, (Vector{3, 7}));
}

TEST(MatrixTest, MultiplyVectorShapeMismatch) {
  Matrix a(2, 2);
  EXPECT_FALSE(a.MultiplyVector({1, 2, 3}).ok());
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{4, 3}, {2, 1}});
  EXPECT_EQ(a.Add(b).ValueOrDie(), Matrix({{5, 5}, {5, 5}}));
  EXPECT_EQ(a.Subtract(a).ValueOrDie(), Matrix(2, 2, 0.0));
  EXPECT_EQ(a.Scale(2.0), Matrix({{2, 4}, {6, 8}}));
  EXPECT_FALSE(a.Add(Matrix(1, 2)).ok());
  EXPECT_FALSE(a.Subtract(Matrix(3, 3)).ok());
}

TEST(MatrixTest, RowSlice) {
  Matrix m({{1, 1}, {2, 2}, {3, 3}});
  auto s = m.RowSlice(1, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, Matrix({{2, 2}, {3, 3}}));
  EXPECT_FALSE(m.RowSlice(2, 1).ok());
  EXPECT_FALSE(m.RowSlice(0, 4).ok());
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a({{1, 2}});
  Matrix b({{1.5, 1.0}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b).ValueOrDie(), 1.0);
  EXPECT_FALSE(a.MaxAbsDiff(Matrix(2, 2)).ok());
}

TEST(MatrixTest, ToStringContainsValues) {
  Matrix m({{1.5}});
  EXPECT_NE(m.ToString().find("1.5"), std::string::npos);
}

TEST(MatrixDeathTest, OutOfRangeAccessAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.At(2, 0), "out of range");
}

TEST(MatrixTest, GramMatchesTransposeMultiply) {
  Matrix a({{1, 2}, {3, 4}, {5, 6}});
  const Matrix gram = a.Gram();
  const Matrix reference = a.Transpose().Multiply(a).ValueOrDie();
  EXPECT_DOUBLE_EQ(gram.MaxAbsDiff(reference).ValueOrDie(), 0.0);
}

TEST(MatrixTest, TransposeTimesVectorMatchesTranspose) {
  Matrix a({{1, 2}, {3, 4}, {5, 6}});
  const Vector v = {1.0, -1.0, 2.0};
  const Vector got = a.TransposeTimesVector(v).ValueOrDie();
  const Vector want = a.Transpose().MultiplyVector(v).ValueOrDie();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_DOUBLE_EQ(got[i], want[i]);
  EXPECT_FALSE(a.TransposeTimesVector({1.0}).ok());
}

TEST(MatrixTest, AddOuterProductGrowsGram) {
  // Accumulating v vᵀ row by row must reproduce the one-shot Gram matrix.
  Matrix a({{1, 2}, {3, 4}, {5, 6}});
  Matrix accumulated(2, 2);
  for (size_t r = 0; r < a.rows(); ++r) accumulated.AddOuterProduct(a.Row(r));
  EXPECT_LT(accumulated.MaxAbsDiff(a.Gram()).ValueOrDie(), 1e-12);
}

TEST(MatrixDeathTest, AddOuterProductShapeMismatchAborts) {
  Matrix m(2, 2);
  Vector v = {1.0, 2.0, 3.0};
  EXPECT_DEATH(m.AddOuterProduct(v), "outer-product");
}

TEST(MatrixTest, FromRowsAssemblesAndRejectsRagged) {
  const std::vector<Vector> rows = {{1, 2, 3}, {4, 5, 6}};
  const Matrix m = Matrix::FromRows(rows).ValueOrDie();
  EXPECT_EQ(m, Matrix({{1, 2, 3}, {4, 5, 6}}));

  EXPECT_TRUE(Matrix::FromRows({}).ValueOrDie().empty());
  EXPECT_FALSE(Matrix::FromRows({{1, 2}, {3}}).ok());
}

TEST(MatrixTest, RowDataViewsFlatStorage) {
  const Matrix m({{1, 2}, {3, 4}});
  const double* row = m.RowData(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(MatrixTest, MultiplyIntoMatchesMultiply) {
  const Matrix a({{1, 2, 3}, {4, 5, 6}});
  const Matrix b({{7, 8}, {9, 10}, {11, 12}});
  Matrix out;
  ASSERT_TRUE(a.MultiplyInto(b, &out).ok());
  EXPECT_EQ(out, a.Multiply(b).ValueOrDie());
}

TEST(MatrixTest, MultiplyIntoAccumulatesOnTopOfSeed) {
  const Matrix a({{1, 0}, {0, 1}});
  const Matrix b({{2, 3}, {4, 5}});
  Matrix out({{100, 100}, {100, 100}});
  ASSERT_TRUE(a.MultiplyInto(b, &out, /*accumulate=*/true).ok());
  EXPECT_EQ(out, Matrix({{102, 103}, {104, 105}}));
}

TEST(MatrixTest, MultiplyIntoRejectsBadShapesAndAliasing) {
  const Matrix a(2, 3);
  const Matrix b(3, 2);
  Matrix wrong(5, 5);
  EXPECT_FALSE(a.MultiplyInto(a, &wrong).ok());  // 3 != 2
  EXPECT_FALSE(a.MultiplyInto(b, &wrong, /*accumulate=*/true).ok());
  Matrix alias = b;
  EXPECT_FALSE(a.MultiplyInto(alias, &alias).ok());
}

TEST(MatrixTest, MultiplyTransposedIntoMatchesExplicitTranspose) {
  const Matrix a = RandomMatrix(7, 5, 21);
  const Matrix b = RandomMatrix(5, 9, 22);
  const Matrix bt = b.Transpose();
  Matrix via_transposed;
  ASSERT_TRUE(a.MultiplyTransposedInto(bt, &via_transposed).ok());
  const Matrix direct = a.Multiply(b).ValueOrDie();
  EXPECT_LT(via_transposed.MaxAbsDiff(direct).ValueOrDie(), 1e-12);

  Matrix wrong(7, 9);
  EXPECT_FALSE(a.MultiplyTransposedInto(b, &wrong).ok());  // 5 != 9 (k)
}

TEST(MatrixTest, MultiplyTransposedIntoAccumulatesBiasFirst) {
  // Seeding the output and accumulating must equal seed + product.
  const Matrix a = RandomMatrix(4, 6, 23);
  const Matrix bt = RandomMatrix(3, 6, 24);
  Matrix seeded(4, 3, 2.5);
  ASSERT_TRUE(a.MultiplyTransposedInto(bt, &seeded, /*accumulate=*/true).ok());
  Matrix product;
  ASSERT_TRUE(a.MultiplyTransposedInto(bt, &product).ok());
  const Matrix want = product.Add(Matrix(4, 3, 2.5)).ValueOrDie();
  EXPECT_LT(seeded.MaxAbsDiff(want).ValueOrDie(), 1e-12);
}

TEST(MatrixTest, BlockedMultiplyMatchesNaiveReference) {
  // The blocked kernel is pinned against the textbook triple loop across
  // shapes that exercise full tiles, ragged tail tiles and tall/flat
  // operands.
  const struct {
    size_t n, k, m;
  } shapes[] = {{1, 1, 1},   {3, 4, 5},    {64, 64, 64},
                {65, 63, 66}, {128, 17, 96}, {200, 129, 71}};
  uint64_t seed = 100;
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s.n, s.k, seed++);
    const Matrix b = RandomMatrix(s.k, s.m, seed++);
    Matrix blocked, naive;
    ASSERT_TRUE(a.MultiplyInto(b, &blocked).ok());
    ASSERT_TRUE(MultiplyReferenceInto(a, b, &naive).ok());
    EXPECT_LT(blocked.MaxAbsDiff(naive).ValueOrDie(), 1e-12)
        << s.n << "x" << s.k << "x" << s.m;
  }
  Matrix out;
  EXPECT_FALSE(MultiplyReferenceInto(Matrix(2, 3), Matrix(2, 3), &out).ok());
}

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(VectorOpsTest, Norm2) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

TEST(VectorOpsDeathTest, DotLengthMismatchAborts) {
  EXPECT_DEATH(Dot({1.0}, {1.0, 2.0}), "mismatch");
}

}  // namespace
}  // namespace midas
