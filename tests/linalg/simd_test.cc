#include "linalg/simd.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/random.h"
#include "linalg/matrix.h"

namespace midas {
namespace {

// Pins the scalar kernel tier for the lifetime of the guard; unpinning
// re-runs the normal selection so the surrounding tests see the tier the
// process was dispatched to.
class ScalarPin {
 public:
  ScalarPin() { simd::SetForceScalar(true); }
  ~ScalarPin() { simd::SetForceScalar(false); }
};

// Handwritten oracles with the seed kernels' exact association: ascending
// index, accumulation seeded first. The scalar tier must reproduce these
// bit-for-bit; a vector tier may drift by at most kRelTol relative.
constexpr double kRelTol = 1e-12;

double DotRef(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void ExpectWithinRelTol(double actual, double expected) {
  const double scale =
      std::max({1.0, std::abs(actual), std::abs(expected)});
  EXPECT_NEAR(actual, expected, kRelTol * scale);
}

Vector RandomVector(Rng* rng, size_t n) {
  Vector v(n);
  for (double& x : v) x = rng->Uniform(-3.0, 3.0);
  return v;
}

Matrix RandomMatrix(Rng* rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->Uniform(-2.0, 2.0);
  }
  return m;
}

// Lengths that exercise every code path of the vector kernels: empty, a
// single lane, partial masks, exact multiples of the 4- and 8-wide loops,
// and lengths just around them.
const size_t kAwkwardLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,
                                  9,  15, 16, 17, 31, 32, 33, 100};

TEST(SimdDispatchTest, ForceScalarPinsAndUnpins) {
  const SimdTier detected = simd::ActiveTier();
  {
    ScalarPin pin;
    EXPECT_EQ(simd::ActiveTier(), SimdTier::kScalar);
    EXPECT_FALSE(simd::Enabled());
  }
  EXPECT_EQ(simd::ActiveTier(), detected);
  EXPECT_EQ(simd::Enabled(), detected != SimdTier::kScalar);
}

TEST(SimdDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2Fma), "avx2+fma");
  EXPECT_STREQ(SimdTierName(SimdTier::kNeon), "neon");
}

TEST(SimdKernelTest, DotMatchesOracleOverAwkwardLengths) {
  Rng rng(101);
  for (size_t n : kAwkwardLengths) {
    const Vector a = RandomVector(&rng, n);
    const Vector b = RandomVector(&rng, n);
    const double oracle = DotRef(a.data(), b.data(), n);
    const double dispatched = simd::Dot(a.data(), b.data(), n);
    ExpectWithinRelTol(dispatched, oracle);
    ScalarPin pin;
    // The scalar tier IS the oracle: bit-exact, not merely close.
    EXPECT_EQ(simd::Dot(a.data(), b.data(), n), oracle) << "n=" << n;
  }
}

TEST(SimdKernelTest, DotAccSeedsTheAccumulatorFirst) {
  Rng rng(102);
  for (size_t n : kAwkwardLengths) {
    const Vector a = RandomVector(&rng, n);
    const Vector b = RandomVector(&rng, n);
    const double seed = rng.Uniform(-10.0, 10.0);
    double oracle = seed;
    for (size_t i = 0; i < n; ++i) oracle += a[i] * b[i];
    ExpectWithinRelTol(simd::DotAcc(seed, a.data(), b.data(), n), oracle);
    ScalarPin pin;
    EXPECT_EQ(simd::DotAcc(seed, a.data(), b.data(), n), oracle) << "n=" << n;
  }
}

TEST(SimdKernelTest, AxpyMatchesOracleOverAwkwardLengths) {
  Rng rng(103);
  for (size_t n : kAwkwardLengths) {
    const Vector x = RandomVector(&rng, n);
    const Vector y0 = RandomVector(&rng, n);
    const double alpha = rng.Uniform(-2.0, 2.0);
    Vector oracle = y0;
    for (size_t i = 0; i < n; ++i) oracle[i] += alpha * x[i];
    Vector y = y0;
    simd::Axpy(alpha, x.data(), y.data(), n);
    for (size_t i = 0; i < n; ++i) ExpectWithinRelTol(y[i], oracle[i]);
    ScalarPin pin;
    y = y0;
    simd::Axpy(alpha, x.data(), y.data(), n);
    EXPECT_EQ(y, oracle) << "n=" << n;
  }
}

struct GemmShape {
  size_t n, k, m;
};

// 1×1×1, zero-extent inner dimension, sub-tile shapes, exact register-tile
// multiples (4 rows × 8 columns), and every remainder combination around
// them.
const GemmShape kGemmShapes[] = {
    {1, 1, 1}, {1, 0, 1},  {0, 3, 2},  {2, 3, 1},   {3, 5, 7},
    {4, 4, 8}, {5, 9, 17}, {8, 16, 8}, {7, 13, 11}, {12, 33, 19},
};

TEST(SimdKernelTest, GemmAccMatchesReferenceOverAwkwardShapes) {
  Rng rng(104);
  for (const GemmShape& shape : kGemmShapes) {
    const Matrix a = RandomMatrix(&rng, shape.n, shape.k);
    const Matrix b = RandomMatrix(&rng, shape.k, shape.m);
    Matrix reference;
    ASSERT_TRUE(MultiplyReferenceInto(a, b, &reference).ok());
    Matrix dispatched;
    ASSERT_TRUE(a.MultiplyInto(b, &dispatched).ok());
    for (size_t i = 0; i < shape.n; ++i) {
      for (size_t j = 0; j < shape.m; ++j) {
        ExpectWithinRelTol(dispatched(i, j), reference(i, j));
      }
    }
    // The pinned scalar kernel must agree with itself across repeated
    // runs and stay within tolerance of the naive reference (the blocked
    // loop reassociates nothing: identical term order).
    ScalarPin pin;
    Matrix pinned;
    ASSERT_TRUE(a.MultiplyInto(b, &pinned).ok());
    Matrix pinned_again;
    ASSERT_TRUE(a.MultiplyInto(b, &pinned_again).ok());
    EXPECT_EQ(pinned, pinned_again);
    for (size_t i = 0; i < shape.n; ++i) {
      for (size_t j = 0; j < shape.m; ++j) {
        EXPECT_EQ(pinned(i, j), reference(i, j))
            << shape.n << "x" << shape.k << "x" << shape.m;
      }
    }
  }
}

TEST(SimdKernelTest, GemmAccumulateSeedsFromExistingOutput) {
  Rng rng(105);
  for (const GemmShape& shape : kGemmShapes) {
    const Matrix a = RandomMatrix(&rng, shape.n, shape.k);
    const Matrix b = RandomMatrix(&rng, shape.k, shape.m);
    const Matrix bias = RandomMatrix(&rng, shape.n, shape.m);
    Matrix product;
    ASSERT_TRUE(MultiplyReferenceInto(a, b, &product).ok());
    Matrix out = bias;
    ASSERT_TRUE(a.MultiplyInto(b, &out, /*accumulate=*/true).ok());
    for (size_t i = 0; i < shape.n; ++i) {
      for (size_t j = 0; j < shape.m; ++j) {
        ExpectWithinRelTol(out(i, j), bias(i, j) + product(i, j));
      }
    }
  }
}

TEST(SimdKernelTest, GemmTransBMatchesUntransposedProduct) {
  Rng rng(106);
  for (const GemmShape& shape : kGemmShapes) {
    const Matrix a = RandomMatrix(&rng, shape.n, shape.k);
    const Matrix bt = RandomMatrix(&rng, shape.m, shape.k);
    Matrix reference;
    ASSERT_TRUE(MultiplyReferenceInto(a, bt.Transpose(), &reference).ok());
    Matrix dispatched;
    ASSERT_TRUE(a.MultiplyTransposedInto(bt, &dispatched).ok());
    for (size_t i = 0; i < shape.n; ++i) {
      for (size_t j = 0; j < shape.m; ++j) {
        ExpectWithinRelTol(dispatched(i, j), reference(i, j));
      }
    }
  }
}

TEST(SimdKernelTest, ZeroLengthKernelsLeaveOutputsUntouched) {
  // k == 0 products must not even add 0.0 to the output (that would turn
  // -0.0 into +0.0 and break bitwise equality with the scalar path, which
  // never touches the accumulator).
  EXPECT_EQ(simd::Dot(nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(simd::DotAcc(4.5, nullptr, nullptr, 0), 4.5);
  Matrix a(2, 0);
  Matrix bt(3, 0);
  Matrix out(2, 3, 0.0);
  out(0, 0) = -0.0;
  ASSERT_TRUE(a.MultiplyTransposedInto(bt, &out, /*accumulate=*/true).ok());
  EXPECT_TRUE(std::signbit(out(0, 0)));
}

TEST(SimdKernelTest, ForceScalarRunsAreBitwiseReproducible) {
  // The reproducibility gate behind the MIDAS_FORCE_SCALAR knob: two
  // pinned evaluations of the same batched pipeline are bitwise equal,
  // and equal to the per-row scalar evaluation.
  Rng rng(107);
  const Matrix x = RandomMatrix(&rng, 9, 5);
  const Matrix w = RandomMatrix(&rng, 5, 3);
  ScalarPin pin;
  Matrix first;
  ASSERT_TRUE(x.MultiplyInto(w, &first).ok());
  Matrix second;
  ASSERT_TRUE(x.MultiplyInto(w, &second).ok());
  EXPECT_EQ(first, second);
  for (size_t i = 0; i < x.rows(); ++i) {
    const Vector row = x.Row(i);
    for (size_t j = 0; j < w.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < w.rows(); ++k) acc += row[k] * w(k, j);
      EXPECT_EQ(first(i, j), acc);
    }
  }
}

TEST(SimdAlignmentTest, VectorAndMatrixBuffersAre64ByteAligned) {
  for (size_t n : {1u, 7u, 33u}) {
    Vector v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u);
    Matrix m(n, n, 1.0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.RowData(0)) % 64, 0u);
  }
}

}  // namespace
}  // namespace midas
