#include "midas/experiments.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(PaperTable2Test, ReproducesPaperRSquaredColumn) {
  auto rows = PaperTable2Rows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 7u);  // M = 4 .. 10
  const std::vector<double> paper = {0.7571, 0.7705, 0.8371, 0.8788,
                                     0.8876, 0.8751, 0.8945};
  for (size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ((*rows)[i].m, i + 4);
    EXPECT_NEAR((*rows)[i].r2, paper[i], 5e-4) << "M=" << (*rows)[i].m;
  }
}

TEST(PaperTable2Test, RSquaredCrossesThresholdAtSix) {
  // The paper's reading: R² >= 0.8 is first reached at M = 6.
  auto rows = PaperTable2Rows().ValueOrDie();
  EXPECT_LT(rows[0].r2, 0.8);  // M=4
  EXPECT_LT(rows[1].r2, 0.8);  // M=5
  EXPECT_GE(rows[2].r2, 0.8);  // M=6
}

TEST(SyntheticR2SweepTest, GrowsWithWindow) {
  auto rows = SyntheticR2Sweep(20, /*noise_sigma=*/2.0, /*seed=*/5);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 17u);
  // R² at the largest window should comfortably exceed a small-window dip;
  // compare the mean of the last three against the first value minus slack.
  const double late = ((*rows)[14].r2 + (*rows)[15].r2 + (*rows)[16].r2) / 3;
  EXPECT_GT(late, 0.5);
}

TEST(SyntheticR2SweepTest, CleanDataSaturates) {
  auto rows = SyntheticR2Sweep(15, /*noise_sigma=*/0.0, /*seed=*/6);
  ASSERT_TRUE(rows.ok());
  for (const R2Row& row : *rows) {
    EXPECT_NEAR(row.r2, 1.0, 1e-9);
  }
}

TEST(SyntheticR2SweepTest, RejectsTinyMmax) {
  EXPECT_FALSE(SyntheticR2Sweep(3, 1.0, 1).ok());
}

TEST(MreExperimentTest, DefaultsFillPaperColumns) {
  MreExperimentOptions options;
  options.ApplyDefaults();
  EXPECT_EQ(options.query_ids, (std::vector<int>{12, 13, 14, 17}));
  ASSERT_EQ(options.estimators.size(), 5u);
  EXPECT_EQ(EstimatorName(options.estimators[0]), "BML_N");
  EXPECT_EQ(EstimatorName(options.estimators[3]), "BML");
  EXPECT_EQ(EstimatorName(options.estimators[4]), "DREAM");
}

TEST(MreExperimentTest, SmallRunProducesFullGrid) {
  MreExperimentOptions options;
  options.query_ids = {12};
  options.warmup_runs = 15;
  options.eval_runs = 10;
  options.seed = 11;
  auto report = RunMreExperiment(options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->query_ids.size(), 1u);
  ASSERT_EQ(report->time_mre.size(), 1u);
  ASSERT_EQ(report->time_mre[0].size(), 5u);
  ASSERT_EQ(report->money_mre[0].size(), 5u);
  for (double v : report->time_mre[0]) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 10.0);
  }
  EXPECT_GT(report->base_window, 0u);
  EXPECT_GE(report->mean_dream_window[0],
            static_cast<double>(report->base_window));
}

TEST(MreExperimentTest, DeterministicGivenSeed) {
  MreExperimentOptions options;
  options.query_ids = {14};
  options.warmup_runs = 12;
  options.eval_runs = 6;
  options.seed = 77;
  auto a = RunMreExperiment(options);
  auto b = RunMreExperiment(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->time_mre, b->time_mre);
  EXPECT_EQ(a->money_mre, b->money_mre);
}

TEST(MreExperimentTest, RejectsZeroEvalRuns) {
  MreExperimentOptions options;
  options.eval_runs = 0;
  EXPECT_FALSE(RunMreExperiment(options).ok());
}

TEST(MreExperimentTest, DreamWindowBoundedByConfiguredCap) {
  MreExperimentOptions options;
  options.query_ids = {12};
  options.warmup_runs = 20;
  options.eval_runs = 8;
  options.dream_m_max_windows = 2;
  auto report = RunMreExperiment(options);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->mean_dream_window[0],
            2.0 * static_cast<double>(report->base_window));
}

}  // namespace
}  // namespace midas
