#include "midas/medgen.h"

#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(MedGenTest, RowCountsMatchCatalog) {
  MedGen gen(0.001);
  EXPECT_EQ(gen.RowCount("Patient").ValueOrDie(), 1000u);
  EXPECT_EQ(gen.RowCount("GeneralInfo").ValueOrDie(), 4000u);
  EXPECT_FALSE(gen.RowCount("Bogus").ok());
}

TEST(MedGenTest, DeterministicGivenSeed) {
  MedGen a(0.001, 5), b(0.001, 5);
  for (uint64_t i : {0ull, 7ull, 100ull}) {
    EXPECT_EQ(MedGen::FormatRow(a.GenerateRow("Patient", i).ValueOrDie()),
              MedGen::FormatRow(b.GenerateRow("Patient", i).ValueOrDie()));
  }
}

TEST(MedGenTest, SeedsChangeData) {
  MedGen a(0.001, 1), b(0.001, 2);
  EXPECT_NE(MedGen::FormatRow(a.GenerateRow("Patient", 0).ValueOrDie()),
            MedGen::FormatRow(b.GenerateRow("Patient", 0).ValueOrDie()));
}

TEST(MedGenTest, RowIndexIndependence) {
  MedGen gen(0.001, 9);
  const MedRow direct = gen.GenerateRow("LabResult", 42).ValueOrDie();
  MedGen gen2(0.001, 9);
  gen2.GenerateRow("LabResult", 0).ValueOrDie();
  EXPECT_EQ(MedGen::FormatRow(direct),
            MedGen::FormatRow(gen2.GenerateRow("LabResult", 42).ValueOrDie()));
}

TEST(MedGenTest, PatientUidsAreSequential) {
  MedGen gen(0.001);
  for (uint64_t i : {0ull, 1ull, 999ull}) {
    const MedRow row = gen.GenerateRow("Patient", i).ValueOrDie();
    EXPECT_EQ(std::get<int64_t>(row[0]), static_cast<int64_t>(i + 1));
  }
}

TEST(MedGenTest, ForeignKeysWithinPatientPopulation) {
  MedGen gen(0.001);
  for (uint64_t i = 0; i < 100; ++i) {
    const MedRow row = gen.GenerateRow("GeneralInfo", i).ValueOrDie();
    const int64_t uid = std::get<int64_t>(row[0]);
    EXPECT_GE(uid, 1);
    EXPECT_LE(uid, 1000);
  }
}

TEST(MedGenTest, SexAndBloodTypeFromClinicalDomains) {
  MedGen gen(0.001);
  const std::set<std::string> sexes = {"F", "M", "U"};
  const std::set<std::string> blood = {"O+", "O-", "A+", "A-",
                                       "B+", "B-", "AB+", "AB-"};
  for (uint64_t i = 0; i < 200; ++i) {
    const MedRow row = gen.GenerateRow("Patient", i).ValueOrDie();
    EXPECT_TRUE(sexes.count(std::get<std::string>(row[2])));
    EXPECT_TRUE(blood.count(std::get<std::string>(row[4])));
  }
}

TEST(MedGenTest, ModalitiesAreDicomCodes) {
  MedGen gen(0.001);
  const std::set<std::string> modalities = {"CT", "MR", "US", "XR",
                                            "CR", "PT", "NM", "MG"};
  for (uint64_t i = 0; i < 100; ++i) {
    const MedRow row = gen.GenerateRow("ImagingStudy", i).ValueOrDie();
    EXPECT_TRUE(modalities.count(std::get<std::string>(row[2])))
        << std::get<std::string>(row[2]);
  }
}

TEST(MedGenTest, RowArityMatchesSchema) {
  MedGen gen(0.001);
  EXPECT_EQ(gen.GenerateRow("Patient", 0).ValueOrDie().size(), 6u);
  EXPECT_EQ(gen.GenerateRow("GeneralInfo", 0).ValueOrDie().size(), 5u);
  EXPECT_EQ(gen.GenerateRow("ImagingStudy", 0).ValueOrDie().size(), 6u);
  EXPECT_EQ(gen.GenerateRow("LabResult", 0).ValueOrDie().size(), 5u);
}

TEST(MedGenTest, OutOfRangeRejected) {
  MedGen gen(0.001);
  EXPECT_FALSE(gen.GenerateRow("Patient", 1000).ok());
}

TEST(MedGenTest, GenerateStopsOnSinkFalse) {
  MedGen gen(0.001);
  uint64_t count = 0;
  ASSERT_TRUE(gen.Generate("Patient", [&](uint64_t, const MedRow&) {
                    return ++count < 5;
                  })
                  .ok());
  EXPECT_EQ(count, 5u);
}

TEST(MedGenTest, WriteCsvWithHeader) {
  MedGen gen(0.001);
  const std::string path = testing::TempDir() + "/patients.csv";
  ASSERT_TRUE(gen.WriteCsv("Patient", path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.substr(0, 4), "UID,");
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1000u);
  std::remove(path.c_str());
}

TEST(MedGenTest, InvalidScaleFails) {
  MedGen gen(0.0);
  EXPECT_FALSE(gen.RowCount("Patient").ok());
}

}  // namespace
}  // namespace midas
