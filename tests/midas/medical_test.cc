#include "midas/medical.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(MedicalCatalogTest, HasFourTables) {
  auto catalog = MakeMedicalCatalog();
  ASSERT_TRUE(catalog.ok());
  for (const char* name :
       {"Patient", "GeneralInfo", "ImagingStudy", "LabResult"}) {
    EXPECT_TRUE(catalog->Contains(name)) << name;
  }
}

TEST(MedicalCatalogTest, ScaleMultipliesPopulation) {
  auto full = MakeMedicalCatalog(1.0).ValueOrDie();
  auto half = MakeMedicalCatalog(0.5).ValueOrDie();
  EXPECT_EQ(full.Find("Patient").ValueOrDie()->row_count, 1'000'000u);
  EXPECT_EQ(half.Find("Patient").ValueOrDie()->row_count, 500'000u);
}

TEST(MedicalCatalogTest, RejectsNonPositiveScale) {
  EXPECT_FALSE(MakeMedicalCatalog(0.0).ok());
  EXPECT_FALSE(MakeMedicalCatalog(-1.0).ok());
}

TEST(MedicalCatalogTest, Example21ColumnsExist) {
  auto catalog = MakeMedicalCatalog().ValueOrDie();
  const TableDef* patient = catalog.Find("Patient").ValueOrDie();
  EXPECT_TRUE(patient->FindColumn("UID").ok());
  EXPECT_TRUE(patient->FindColumn("PatientSex").ok());
  const TableDef* info = catalog.Find("GeneralInfo").ValueOrDie();
  EXPECT_TRUE(info->FindColumn("UID").ok());
  EXPECT_TRUE(info->FindColumn("GeneralNames").ok());
}

TEST(Example21QueryTest, MatchesPaperShape) {
  auto catalog = MakeMedicalCatalog().ValueOrDie();
  auto plan = MakeExample21Query();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Validate(catalog).ok());
  // SELECT PatientSex, GeneralNames FROM Patient ⋈ GeneralInfo ON UID.
  EXPECT_EQ(plan->root()->kind, OperatorKind::kProject);
  EXPECT_EQ(plan->root()->columns,
            (std::vector<std::string>{"PatientSex", "GeneralNames"}));
  const PlanNode* join = plan->root()->children[0].get();
  EXPECT_EQ(join->kind, OperatorKind::kJoin);
  EXPECT_EQ(join->left_join_column, "UID");
  EXPECT_EQ(join->right_join_column, "UID");
  EXPECT_EQ(plan->BaseTables(),
            (std::vector<std::string>{"Patient", "GeneralInfo"}));
}

TEST(Example21QueryTest, CardinalityIsOneRowPerAdmission) {
  auto catalog = MakeMedicalCatalog(0.1).ValueOrDie();
  auto plan = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  // Each GeneralInfo row matches exactly one patient on average.
  EXPECT_NEAR(plan.root()->output_rows, 400'000.0, 1.0);
}

TEST(ImagingCohortQueryTest, BuildsAndValidates) {
  auto catalog = MakeMedicalCatalog().ValueOrDie();
  auto plan = MakeImagingCohortQuery();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate(catalog).ok());
  EXPECT_EQ(plan->BaseTables().size(), 2u);
}

TEST(ImagingCohortQueryTest, RejectsBadSelectivity) {
  EXPECT_FALSE(MakeImagingCohortQuery(0.0).ok());
  EXPECT_FALSE(MakeImagingCohortQuery(1.5).ok());
}

TEST(PlaceMedicalTablesTest, PlacesAcrossPaperFederation) {
  Federation fed = Federation::PaperFederation();
  ASSERT_TRUE(PlaceMedicalTables(&fed).ok());
  auto patient = fed.TablePlacement("Patient").ValueOrDie();
  auto info = fed.TablePlacement("GeneralInfo").ValueOrDie();
  EXPECT_EQ(patient.engine, EngineKind::kHive);
  EXPECT_EQ(info.engine, EngineKind::kPostgres);
  EXPECT_NE(patient.site, info.site);
}

TEST(PlaceMedicalTablesTest, NeedsNamedSites) {
  Federation empty;
  EXPECT_FALSE(PlaceMedicalTables(&empty).ok());
  EXPECT_FALSE(PlaceMedicalTables(nullptr).ok());
}

}  // namespace
}  // namespace midas
