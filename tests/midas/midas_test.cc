#include "midas/midas.h"

#include <gtest/gtest.h>

#include "midas/medical.h"
#include "support/simd_testing.h"

namespace midas {
namespace {

MidasSystem MakeSystem(MidasOptions options = MidasOptions()) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(/*scale=*/0.05).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  return MidasSystem(std::move(federation), std::move(catalog), options);
}

TEST(MidasSystemTest, BootstrapFillsHistory) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("scope", query, 10).ok());
  EXPECT_EQ(system.modelling().history().SizeOf("scope"), 10u);
}

TEST(MidasSystemTest, RunQueryEndToEnd) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("scope", query, 16).ok());
  QueryPolicy policy;
  policy.weights = {0.7, 0.3};
  auto outcome = system.RunQuery("scope", query, policy);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->moqp.pareto_plans.empty());
  EXPECT_EQ(outcome->predicted.size(), 2u);
  EXPECT_GT(outcome->actual.seconds, 0.0);
  EXPECT_GT(outcome->actual.dollars, 0.0);
  EXPECT_EQ(outcome->estimator, "DREAM");
  // Feedback: the executed measurement was recorded.
  EXPECT_EQ(system.modelling().history().SizeOf("scope"), 17u);
}

TEST(MidasSystemTest, RunQueryWithoutHistoryFails) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  EXPECT_FALSE(system.RunQuery("cold", query, policy).ok());
}

TEST(MidasSystemTest, BmlEstimatorConfigurable) {
  MidasOptions options;
  options.estimator = EstimatorConfig::Bml(WindowPolicy::kLast2N);
  MidasSystem system = MakeSystem(options);
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("scope", query, 16).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("scope", query, policy);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->estimator, "BML_2N");
}

TEST(MidasSystemTest, PredictPlanCostsMatchesMetricLayout) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("scope", query, 16).ok());
  // Grab an annotated plan via a fresh enumeration inside RunQuery's path:
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("scope", query, policy);
  ASSERT_TRUE(outcome.ok());
  auto costs =
      system.PredictPlanCosts("scope", outcome->moqp.chosen_plan());
  ASSERT_TRUE(costs.ok());
  EXPECT_EQ(costs->size(), 2u);
  EXPECT_GE((*costs)[0], 0.0);
  EXPECT_GE((*costs)[1], 0.0);
}

TEST(MidasSystemTest, PredictionTracksActualWithinFactor) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("scope", query, 24).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("scope", query, policy);
  ASSERT_TRUE(outcome.ok());
  // The estimator should land within 3x of the realised cost in a
  // moderately drifting environment.
  EXPECT_LT(outcome->predicted[0], outcome->actual.seconds * 3.0);
  EXPECT_GT(outcome->predicted[0], outcome->actual.seconds / 3.0);
}

TEST(MidasSystemTest, WsmModeRunsEndToEnd) {
  MidasOptions options;
  options.moqp.algorithm = MoqpAlgorithm::kWsm;
  MidasSystem system = MakeSystem(options);
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("scope", query, 16).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto outcome = system.RunQuery("scope", query, policy);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->moqp.pareto_plans.size(), 1u);
}

TEST(MidasSystemTest, ShardedRunQueryMatchesSerial) {
  // RunQuery with moqp.shards != 1 routes through the sharded streaming
  // pipeline (batched snapshot predictor); at equal seed and history the
  // optimization outcome must match the serial path: bit-identical when
  // the scalar kernel tier is pinned, and within the SIMD layer's 1e-12
  // relative drift budget otherwise (the batch path runs the GEMM tile
  // kernel while the serial path runs per-row dots).
  MidasOptions serial_options;
  serial_options.seed = 321;
  MidasSystem serial = MakeSystem(serial_options);
  MidasOptions sharded_options = serial_options;
  sharded_options.moqp.shards = 2;
  MidasSystem sharded = MakeSystem(sharded_options);

  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(serial.Bootstrap("s", query, 16).ok());
  ASSERT_TRUE(sharded.Bootstrap("s", query, 16).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto a = serial.RunQuery("s", query, policy);
  auto b = sharded.RunQuery("s", query, policy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->moqp.pareto_costs.size(), b->moqp.pareto_costs.size());
  for (size_t p = 0; p < a->moqp.pareto_costs.size(); ++p) {
    ASSERT_EQ(a->moqp.pareto_costs[p].size(), b->moqp.pareto_costs[p].size());
    for (size_t k = 0; k < a->moqp.pareto_costs[p].size(); ++k) {
      SCOPED_TRACE("plan " + std::to_string(p) + " metric " +
                   std::to_string(k));
      MIDAS_EXPECT_SIMD_EQ(b->moqp.pareto_costs[p][k],
                           a->moqp.pareto_costs[p][k]);
    }
  }
  EXPECT_EQ(a->moqp.chosen, b->moqp.chosen);
  EXPECT_EQ(a->moqp.chosen_plan().ToString(), b->moqp.chosen_plan().ToString());
  ASSERT_EQ(a->predicted.size(), b->predicted.size());
  for (size_t k = 0; k < a->predicted.size(); ++k) {
    SCOPED_TRACE("predicted metric " + std::to_string(k));
    MIDAS_EXPECT_SIMD_EQ(b->predicted[k], a->predicted[k]);
  }
  EXPECT_TRUE(a->moqp.shard_stats.empty());
  EXPECT_EQ(b->moqp.shard_stats.size(), 2u);
}

TEST(MidasSystemTest, DeterministicWithSameSeed) {
  MidasOptions options;
  options.seed = 777;
  MidasSystem a = MakeSystem(options);
  MidasSystem b = MakeSystem(options);
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(a.Bootstrap("s", query, 12).ok());
  ASSERT_TRUE(b.Bootstrap("s", query, 12).ok());
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  auto oa = a.RunQuery("s", query, policy);
  auto ob = b.RunQuery("s", query, policy);
  ASSERT_TRUE(oa.ok());
  ASSERT_TRUE(ob.ok());
  EXPECT_DOUBLE_EQ(oa->actual.seconds, ob->actual.seconds);
  EXPECT_EQ(oa->predicted, ob->predicted);
}

}  // namespace
}  // namespace midas
