#include "ml/bagging.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

TEST(BaggingTest, FitsAndPredictsSmoothFunction) {
  Rng rng(1);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0, 10);
    xs.push_back({x});
    ys.push_back(3.0 * x + rng.Gaussian(0, 0.5));
  }
  BaggingLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  EXPECT_EQ(learner.num_fitted_estimators(), 10u);
  EXPECT_NEAR(learner.Predict({5.0}).ValueOrDie(), 15.0, 2.0);
  EXPECT_EQ(learner.name(), "bagging");
}

TEST(BaggingTest, DeterministicGivenSeed) {
  Rng rng(2);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.Uniform(0, 1);
    xs.push_back({x});
    ys.push_back(x);
  }
  BaggingOptions options;
  options.seed = 55;
  BaggingLearner a(options), b(options);
  ASSERT_TRUE(a.Fit(xs, ys).ok());
  ASSERT_TRUE(b.Fit(xs, ys).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.4}).ValueOrDie(),
                   b.Predict({0.4}).ValueOrDie());
}

TEST(BaggingTest, EnsembleSizeConfigurable) {
  BaggingOptions options;
  options.num_estimators = 3;
  BaggingLearner learner(options);
  ASSERT_TRUE(learner.Fit({{1}, {2}, {3}, {4}}, {1, 2, 3, 4}).ok());
  EXPECT_EQ(learner.num_fitted_estimators(), 3u);
}

TEST(BaggingTest, ZeroEstimatorsRejected) {
  BaggingOptions options;
  options.num_estimators = 0;
  BaggingLearner learner(options);
  EXPECT_FALSE(learner.Fit({{1}, {2}, {3}}, {1, 2, 3}).ok());
}

TEST(BaggingTest, BadSampleFractionRejected) {
  BaggingOptions options;
  options.sample_fraction = 0.0;
  BaggingLearner learner(options);
  EXPECT_FALSE(learner.Fit({{1}, {2}, {3}}, {1, 2, 3}).ok());
  options.sample_fraction = 1.5;
  BaggingLearner learner2(options);
  EXPECT_FALSE(learner2.Fit({{1}, {2}, {3}}, {1, 2, 3}).ok());
}

TEST(BaggingTest, UnfittedPredictFails) {
  BaggingLearner learner;
  EXPECT_FALSE(learner.Predict({1}).ok());
}

TEST(BaggingTest, PredictionIsAverageWithinTargetRange) {
  // Bagged trees cannot predict outside [min(y), max(y)].
  Rng rng(3);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(0, 1);
    xs.push_back({x});
    ys.push_back(rng.Uniform(10, 20));
  }
  BaggingLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  const double far = learner.Predict({100.0}).ValueOrDie();
  EXPECT_GE(far, 10.0);
  EXPECT_LE(far, 20.0);
}

TEST(BaggingTest, CloneKeepsEnsemble) {
  BaggingLearner learner;
  ASSERT_TRUE(learner.Fit({{0}, {1}, {2}, {3}}, {0, 0, 8, 8}).ok());
  auto clone = learner.Clone();
  EXPECT_DOUBLE_EQ(clone->Predict({3.0}).ValueOrDie(),
                   learner.Predict({3.0}).ValueOrDie());
}

TEST(BaggingTest, PredictBatchMatchesScalarExactly) {
  Rng rng(13);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back({rng.Uniform(0, 10), rng.Uniform(0, 1)});
    ys.push_back(rng.Uniform(-20, 20));
  }
  for (size_t threads : {size_t{1}, size_t{4}}) {
    BaggingOptions options;
    options.threads = threads;
    BaggingLearner learner(options);
    ASSERT_TRUE(learner.Fit(xs, ys).ok());
    std::vector<Vector> queries;
    Rng qrng(14);
    for (int i = 0; i < 33; ++i) {
      queries.push_back({qrng.Uniform(-2, 12), qrng.Uniform(-1, 2)});
    }
    Matrix x = Matrix::FromRows(queries).ValueOrDie();
    Vector batch;
    ASSERT_TRUE(learner.PredictBatch(x, &batch).ok());
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch[i], learner.Predict(queries[i]).ValueOrDie())
          << "threads=" << threads << " row=" << i;
    }
  }
}

TEST(BaggingTest, PredictBatchErrorPaths) {
  BaggingLearner learner;
  Vector out;
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1.0}}), &out).ok());
  ASSERT_TRUE(learner.Fit({{1}, {2}, {3}, {4}}, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1.0, 2.0}}), &out).ok());
}

TEST(BaggingTest, VarianceReductionVersusSingleTree) {
  // On noisy data the ensemble's test error should not exceed a single
  // unpruned tree's by much; typically it is lower. Smoke-check ordering.
  Rng rng(7);
  std::vector<Vector> train_x, test_x;
  Vector train_y, test_y;
  for (int i = 0; i < 80; ++i) {
    const double x = rng.Uniform(0, 10);
    train_x.push_back({x});
    train_y.push_back(2.0 * x + rng.Gaussian(0, 2.0));
  }
  for (int i = 0; i < 40; ++i) {
    const double x = rng.Uniform(0, 10);
    test_x.push_back({x});
    test_y.push_back(2.0 * x);
  }
  RegressionTree tree;
  BaggingLearner bagging;
  ASSERT_TRUE(tree.Fit(train_x, train_y).ok());
  ASSERT_TRUE(bagging.Fit(train_x, train_y).ok());
  double tree_se = 0.0, bag_se = 0.0;
  for (size_t i = 0; i < test_x.size(); ++i) {
    const double tp = tree.Predict(test_x[i]).ValueOrDie();
    const double bp = bagging.Predict(test_x[i]).ValueOrDie();
    tree_se += (tp - test_y[i]) * (tp - test_y[i]);
    bag_se += (bp - test_y[i]) * (bp - test_y[i]);
  }
  EXPECT_LT(bag_se, tree_se * 1.2);
}

}  // namespace
}  // namespace midas
