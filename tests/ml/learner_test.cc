#include "ml/learner.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(ValidateTrainingDataTest, AcceptsWellFormedData) {
  EXPECT_TRUE(ValidateTrainingData({{1, 2}, {3, 4}}, {1, 2}, 2).ok());
}

TEST(ValidateTrainingDataTest, RejectsSizeMismatch) {
  EXPECT_FALSE(ValidateTrainingData({{1}, {2}}, {1}, 1).ok());
}

TEST(ValidateTrainingDataTest, RejectsTooSmall) {
  EXPECT_FALSE(ValidateTrainingData({{1}}, {1}, 2).ok());
}

TEST(ValidateTrainingDataTest, RejectsRaggedRows) {
  EXPECT_FALSE(ValidateTrainingData({{1, 2}, {3}}, {1, 2}, 2).ok());
}

TEST(ValidateTrainingDataTest, RejectsZeroArity) {
  EXPECT_FALSE(ValidateTrainingData({{}, {}}, {1, 2}, 2).ok());
}

}  // namespace
}  // namespace midas
