#include "ml/learner.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

/// Minimal learner that keeps the base-class PredictBatch, to pin the
/// default per-row fallback's semantics (order, error propagation).
class DoublingLearner final : public Learner {
 public:
  std::string name() const override { return "doubling"; }
  Status Fit(const std::vector<Vector>& features,
             const Vector& targets) override {
    MIDAS_RETURN_IF_ERROR(ValidateTrainingData(features, targets, 2));
    fitted_ = true;
    return Status::OK();
  }
  StatusOr<double> Predict(const Vector& x) const override {
    if (!fitted_) return Status::FailedPrecondition("not fitted");
    if (x.size() != 1) return Status::InvalidArgument("arity mismatch");
    return 2.0 * x[0];
  }
  std::unique_ptr<Learner> Clone() const override {
    return std::make_unique<DoublingLearner>(*this);
  }

 private:
  bool fitted_ = false;
};

TEST(LearnerPredictBatchTest, DefaultFallbackLoopsPredictInRowOrder) {
  DoublingLearner learner;
  ASSERT_TRUE(learner.Fit({{1}, {2}}, {2, 4}).ok());
  Vector out;
  ASSERT_TRUE(learner.PredictBatch(Matrix({{3}, {5}, {-1}}), &out).ok());
  EXPECT_EQ(out, (Vector{6.0, 10.0, -2.0}));
}

TEST(LearnerPredictBatchTest, DefaultFallbackPropagatesErrors) {
  DoublingLearner learner;
  Vector out;
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1}}), &out).ok());
  ASSERT_TRUE(learner.Fit({{1}, {2}}, {2, 4}).ok());
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1, 2}}), &out).ok());
}

TEST(ValidateTrainingDataTest, AcceptsWellFormedData) {
  EXPECT_TRUE(ValidateTrainingData({{1, 2}, {3, 4}}, {1, 2}, 2).ok());
}

TEST(ValidateTrainingDataTest, RejectsSizeMismatch) {
  EXPECT_FALSE(ValidateTrainingData({{1}, {2}}, {1}, 1).ok());
}

TEST(ValidateTrainingDataTest, RejectsTooSmall) {
  EXPECT_FALSE(ValidateTrainingData({{1}}, {1}, 2).ok());
}

TEST(ValidateTrainingDataTest, RejectsRaggedRows) {
  EXPECT_FALSE(ValidateTrainingData({{1, 2}, {3}}, {1, 2}, 2).ok());
}

TEST(ValidateTrainingDataTest, RejectsZeroArity) {
  EXPECT_FALSE(ValidateTrainingData({{}, {}}, {1, 2}, 2).ok());
}

}  // namespace
}  // namespace midas
