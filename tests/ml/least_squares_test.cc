#include "ml/least_squares.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

TEST(LeastSquaresLearnerTest, FitsLinearData) {
  LeastSquaresLearner learner;
  std::vector<Vector> xs = {{0}, {1}, {2}, {3}};
  ASSERT_TRUE(learner.Fit(xs, {1, 3, 5, 7}).ok());
  EXPECT_NEAR(learner.Predict({5}).ValueOrDie(), 11.0, 1e-9);
  EXPECT_EQ(learner.name(), "least_squares");
}

TEST(LeastSquaresLearnerTest, UnfittedPredictFails) {
  LeastSquaresLearner learner;
  EXPECT_FALSE(learner.Predict({1}).ok());
}

TEST(LeastSquaresLearnerTest, RequiresLPlusTwo) {
  LeastSquaresLearner learner;
  EXPECT_FALSE(learner.Fit({{1, 2}, {3, 4}, {5, 6}}, {1, 2, 3}).ok());
}

TEST(LeastSquaresLearnerTest, CloneKeepsFit) {
  LeastSquaresLearner learner;
  ASSERT_TRUE(learner.Fit({{0}, {1}, {2}}, {0, 2, 4}).ok());
  auto clone = learner.Clone();
  EXPECT_NEAR(clone->Predict({3}).ValueOrDie(), 6.0, 1e-9);
}

TEST(LeastSquaresLearnerTest, RefitReplacesModel) {
  LeastSquaresLearner learner;
  ASSERT_TRUE(learner.Fit({{0}, {1}, {2}}, {0, 1, 2}).ok());
  ASSERT_TRUE(learner.Fit({{0}, {1}, {2}}, {0, 10, 20}).ok());
  EXPECT_NEAR(learner.Predict({1}).ValueOrDie(), 10.0, 1e-9);
}

TEST(LeastSquaresLearnerTest, PredictBatchMatchesScalarExactly) {
  Rng rng(11);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back({rng.Uniform(0, 10), rng.Uniform(-5, 5), rng.Uniform(0, 1)});
    ys.push_back(rng.Uniform(-100, 100));
  }
  LeastSquaresLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  std::vector<Vector> queries;
  for (int i = 0; i < 17; ++i) {
    queries.push_back(
        {rng.Uniform(0, 10), rng.Uniform(-5, 5), rng.Uniform(0, 1)});
  }
  Matrix x = Matrix::FromRows(queries).ValueOrDie();
  Vector batch;
  ASSERT_TRUE(learner.PredictBatch(x, &batch).ok());
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], learner.Predict(queries[i]).ValueOrDie()) << i;
  }
}

TEST(LeastSquaresLearnerTest, PredictBatchErrorPaths) {
  LeastSquaresLearner learner;
  Vector out;
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1.0}}), &out).ok());
  ASSERT_TRUE(learner.Fit({{0}, {1}, {2}}, {0, 2, 4}).ok());
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1.0, 2.0}}), &out).ok());
  ASSERT_TRUE(learner.PredictBatch(Matrix(0, 1), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(LeastSquaresLearnerTest, ExposesModelStatistics) {
  LeastSquaresLearner learner;
  ASSERT_TRUE(learner.Fit({{0}, {1}, {2}, {3}}, {1, 3, 5, 7}).ok());
  EXPECT_NEAR(learner.model().r_squared(), 1.0, 1e-12);
}

}  // namespace
}  // namespace midas
