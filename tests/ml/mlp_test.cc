#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "support/simd_testing.h"

namespace midas {
namespace {

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(1);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.Uniform(0, 1);
    xs.push_back({x});
    ys.push_back(2.0 + 3.0 * x);
  }
  MlpLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  EXPECT_NEAR(learner.Predict({0.5}).ValueOrDie(), 3.5, 0.3);
  EXPECT_EQ(learner.name(), "mlp");
}

TEST(MlpTest, MemorisesTinyWindow) {
  // With WEKA-default lr/momentum the net drives training error near zero
  // on a handful of points — the behaviour that makes training-error model
  // selection favour it.
  Rng rng(2);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 6; ++i) {
    xs.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    ys.push_back(rng.Uniform(10, 30));
  }
  MlpLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  double max_err = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    max_err = std::max(max_err, std::abs(learner.Predict(xs[i]).ValueOrDie() -
                                         ys[i]));
  }
  EXPECT_LT(max_err, 6.0);  // within ~30% of the target range
}

TEST(MlpTest, DeterministicGivenSeed) {
  std::vector<Vector> xs = {{0}, {0.3}, {0.6}, {1.0}};
  Vector ys = {0, 3, 6, 10};
  MlpOptions options;
  options.seed = 77;
  MlpLearner a(options), b(options);
  ASSERT_TRUE(a.Fit(xs, ys).ok());
  ASSERT_TRUE(b.Fit(xs, ys).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.5}).ValueOrDie(),
                   b.Predict({0.5}).ValueOrDie());
}

TEST(MlpTest, HandlesConstantFeatureColumn) {
  std::vector<Vector> xs = {{1, 5}, {2, 5}, {3, 5}, {4, 5}};
  Vector ys = {2, 4, 6, 8};
  MlpLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  const double p = learner.Predict({2.5, 5}).ValueOrDie();
  EXPECT_GT(p, 2.0);
  EXPECT_LT(p, 8.0);
}

TEST(MlpTest, HandlesConstantTarget) {
  std::vector<Vector> xs = {{1}, {2}, {3}, {4}};
  MlpLearner learner;
  ASSERT_TRUE(learner.Fit(xs, {7, 7, 7, 7}).ok());
  EXPECT_NEAR(learner.Predict({2.5}).ValueOrDie(), 7.0, 1.0);
}

TEST(MlpTest, RejectsZeroHiddenUnits) {
  MlpOptions options;
  options.hidden_units = 0;
  MlpLearner learner(options);
  EXPECT_FALSE(learner.Fit({{1}, {2}, {3}, {4}}, {1, 2, 3, 4}).ok());
}

TEST(MlpTest, MinTrainingSizeEnforced) {
  MlpLearner learner;
  EXPECT_FALSE(learner.Fit({{1}, {2}, {3}}, {1, 2, 3}).ok());
}

TEST(MlpTest, UnfittedPredictFails) {
  MlpLearner learner;
  EXPECT_FALSE(learner.Predict({1}).ok());
}

TEST(MlpTest, PredictRejectsWrongArity) {
  MlpLearner learner;
  ASSERT_TRUE(learner.Fit({{1}, {2}, {3}, {4}}, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(learner.Predict({1, 2}).ok());
}

TEST(MlpTest, PredictBatchMatchesScalarExactly) {
  Rng rng(17);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back({rng.Uniform(0, 4), rng.Uniform(-1, 1)});
    ys.push_back(rng.Uniform(5, 25));
  }
  MlpLearner learner;
  ASSERT_TRUE(learner.Fit(xs, ys).ok());
  std::vector<Vector> queries;
  for (int i = 0; i < 21; ++i) {
    queries.push_back({rng.Uniform(-1, 5), rng.Uniform(-2, 2)});
  }
  Matrix x = Matrix::FromRows(queries).ValueOrDie();
  Vector batch;
  ASSERT_TRUE(learner.PredictBatch(x, &batch).ok());
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(i);
    MIDAS_EXPECT_SIMD_EQ(batch[i], learner.Predict(queries[i]).ValueOrDie());
  }
}

TEST(MlpTest, PredictBatchErrorPaths) {
  MlpLearner learner;
  Vector out;
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1.0}}), &out).ok());
  ASSERT_TRUE(learner.Fit({{1}, {2}, {3}, {4}}, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(learner.PredictBatch(Matrix({{1.0, 2.0}}), &out).ok());
}

TEST(MlpTest, CloneKeepsWeights) {
  MlpLearner learner;
  ASSERT_TRUE(learner.Fit({{0}, {0.5}, {1}, {1.5}}, {0, 1, 2, 3}).ok());
  auto clone = learner.Clone();
  EXPECT_DOUBLE_EQ(clone->Predict({0.7}).ValueOrDie(),
                   learner.Predict({0.7}).ValueOrDie());
}

}  // namespace
}  // namespace midas
