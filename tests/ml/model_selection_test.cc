#include "ml/model_selection.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/least_squares.h"

namespace midas {
namespace {

TEST(WindowPolicyTest, NamesMatchPaperColumns) {
  EXPECT_EQ(WindowPolicyName(WindowPolicy::kLastN), "BML_N");
  EXPECT_EQ(WindowPolicyName(WindowPolicy::kLast2N), "BML_2N");
  EXPECT_EQ(WindowPolicyName(WindowPolicy::kLast3N), "BML_3N");
  EXPECT_EQ(WindowPolicyName(WindowPolicy::kAll), "BML");
}

TEST(WindowSizeForTest, MultipliesBaseWindow) {
  EXPECT_EQ(WindowSizeFor(WindowPolicy::kLastN, 6, 100), 6u);
  EXPECT_EQ(WindowSizeFor(WindowPolicy::kLast2N, 6, 100), 12u);
  EXPECT_EQ(WindowSizeFor(WindowPolicy::kLast3N, 6, 100), 18u);
  EXPECT_EQ(WindowSizeFor(WindowPolicy::kAll, 6, 100), 100u);
}

TEST(WindowSizeForTest, ClampsToAvailable) {
  EXPECT_EQ(WindowSizeFor(WindowPolicy::kLast3N, 6, 10), 10u);
  EXPECT_EQ(WindowSizeFor(WindowPolicy::kLastN, 6, 4), 4u);
}

TEST(ModelSelectorTest, NoCandidatesFails) {
  ModelSelector selector;
  EXPECT_FALSE(selector.SelectBest({{1}, {2}}, {1, 2}).ok());
}

TEST(ModelSelectorTest, DefaultZooHasThreeLearners) {
  ModelSelector selector;
  selector.AddDefaultCandidates();
  EXPECT_EQ(selector.num_candidates(), 3u);
}

TEST(ModelSelectorTest, SelectsOnlyViableCandidate) {
  ModelSelector selector;
  selector.AddCandidate([] { return std::make_unique<LeastSquaresLearner>(); });
  std::vector<Vector> xs = {{0}, {1}, {2}, {3}, {4}, {5}};
  Vector ys = {0, 2, 4, 6, 8, 10};
  auto best = selector.SelectBest(xs, ys);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->name, "least_squares");
  EXPECT_NEAR(best->learner->Predict({6}).ValueOrDie(), 12.0, 1e-9);
}

TEST(ModelSelectorTest, TrainingErrorModePrefersMemorisers) {
  // Nonlinear noisy data: high-capacity learners reach lower training
  // error than the linear model.
  ModelSelectorOptions options;
  options.mode = SelectionMode::kTrainingError;
  ModelSelector selector(options);
  selector.AddDefaultCandidates(3);
  Rng rng(4);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 24; ++i) {
    const double x = rng.Uniform(0, 10);
    xs.push_back({x});
    ys.push_back(std::sin(x) * 10.0 + rng.Gaussian(0, 0.5));
  }
  auto best = selector.SelectBest(xs, ys);
  ASSERT_TRUE(best.ok());
  EXPECT_NE(best->name, "least_squares");
}

TEST(ModelSelectorTest, CrossValidationModePrefersTrueModel) {
  // Clean linear data with noise: CV should keep the linear model.
  ModelSelectorOptions options;
  options.mode = SelectionMode::kCrossValidation;
  ModelSelector selector(options);
  selector.AddDefaultCandidates(5);
  Rng rng(6);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.Uniform(0, 10);
    xs.push_back({x});
    ys.push_back(5.0 + 2.0 * x + rng.Gaussian(0, 0.3));
  }
  auto best = selector.SelectBest(xs, ys);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->name, "least_squares");
}

TEST(ModelSelectorTest, SkipsCandidatesThatCannotFit) {
  // Window of 4 points with 2 features: least squares fits (needs L+2=4),
  // and the selector must not fail even if some candidate declines.
  ModelSelector selector;
  selector.AddDefaultCandidates(7);
  std::vector<Vector> xs = {{0, 1}, {1, 2}, {2, 3.5}, {3, 5}};
  Vector ys = {1, 2, 3, 4};
  auto best = selector.SelectBest(xs, ys);
  ASSERT_TRUE(best.ok());
  EXPECT_FALSE(best->name.empty());
}

TEST(ModelSelectorTest, AllCandidatesUnfittableFails) {
  ModelSelector selector;
  selector.AddCandidate([] { return std::make_unique<LeastSquaresLearner>(); });
  // 3 points with 2 features: least squares needs L+2 = 4.
  EXPECT_FALSE(
      selector.SelectBest({{1, 2}, {3, 4}, {5, 6}}, {1, 2, 3}).ok());
}

TEST(ModelSelectorTest, ValidationErrorIsReported) {
  ModelSelector selector;
  selector.AddDefaultCandidates(9);
  std::vector<Vector> xs;
  Vector ys;
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    const double x = rng.Uniform(0, 1);
    xs.push_back({x});
    ys.push_back(x);
  }
  auto best = selector.SelectBest(xs, ys);
  ASSERT_TRUE(best.ok());
  EXPECT_GE(best->validation_error, 0.0);
}

}  // namespace
}  // namespace midas
