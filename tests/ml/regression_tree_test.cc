#include "ml/regression_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

TEST(RegressionTreeTest, FitsStepFunction) {
  // y = 0 for x < 5, y = 10 for x >= 5: one split suffices.
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back({static_cast<double>(i)});
    ys.push_back(i < 5 ? 0.0 : 10.0);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(xs, ys).ok());
  EXPECT_NEAR(tree.Predict({2.0}).ValueOrDie(), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({8.0}).ValueOrDie(), 10.0, 1e-9);
}

TEST(RegressionTreeTest, PureNodeStaysLeaf) {
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit({{1}, {2}, {3}, {4}}, {5, 5, 5, 5}).ok());
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_NEAR(tree.Predict({100.0}).ValueOrDie(), 5.0, 1e-12);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  RegressionTreeOptions options;
  options.max_depth = 1;
  RegressionTree tree(options);
  Rng rng(3);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(0, 1);
    xs.push_back({x});
    ys.push_back(x * x * 100.0);
  }
  ASSERT_TRUE(tree.Fit(xs, ys).ok());
  EXPECT_LE(tree.Depth(), 2u);  // root + one level
}

TEST(RegressionTreeTest, MinSamplesSplitStopsGrowth) {
  RegressionTreeOptions options;
  options.min_samples_split = 100;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit({{1}, {2}, {3}}, {1, 2, 3}).ok());
  EXPECT_EQ(tree.NodeCount(), 1u);
}

TEST(RegressionTreeTest, MultiFeatureSplitsOnInformativeOne) {
  // Feature 0 is noise; feature 1 determines the target.
  Rng rng(5);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 60; ++i) {
    const double informative = rng.Uniform(0, 1);
    xs.push_back({rng.Uniform(0, 1), informative});
    ys.push_back(informative > 0.5 ? 50.0 : -50.0);
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(xs, ys).ok());
  EXPECT_NEAR(tree.Predict({0.9, 0.9}).ValueOrDie(), 50.0, 5.0);
  EXPECT_NEAR(tree.Predict({0.1, 0.1}).ValueOrDie(), -50.0, 5.0);
}

TEST(RegressionTreeTest, PredictRejectsWrongArity) {
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit({{1}, {2}}, {1, 2}).ok());
  EXPECT_FALSE(tree.Predict({1, 2}).ok());
}

TEST(RegressionTreeTest, UnfittedPredictFails) {
  RegressionTree tree;
  EXPECT_FALSE(tree.Predict({1}).ok());
}

TEST(RegressionTreeTest, CloneIsIndependent) {
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit({{0}, {1}, {2}, {3}}, {0, 0, 9, 9}).ok());
  auto clone = tree.Clone();
  EXPECT_NEAR(clone->Predict({3.0}).ValueOrDie(),
              tree.Predict({3.0}).ValueOrDie(), 1e-12);
}

TEST(RegressionTreeTest, PredictBatchMatchesScalarExactly) {
  Rng rng(19);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 80; ++i) {
    xs.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
    ys.push_back(rng.Uniform(-50, 50));
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(xs, ys).ok());
  std::vector<Vector> queries;
  for (int i = 0; i < 41; ++i) {
    queries.push_back({rng.Uniform(-5, 15), rng.Uniform(-5, 15)});
  }
  Matrix x = Matrix::FromRows(queries).ValueOrDie();
  Vector batch;
  ASSERT_TRUE(tree.PredictBatch(x, &batch).ok());
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], tree.Predict(queries[i]).ValueOrDie()) << i;
  }
}

TEST(RegressionTreeTest, PredictBatchErrorPaths) {
  RegressionTree tree;
  Vector out;
  EXPECT_FALSE(tree.PredictBatch(Matrix({{1.0}}), &out).ok());
  ASSERT_TRUE(tree.Fit({{1}, {2}}, {1, 2}).ok());
  EXPECT_FALSE(tree.PredictBatch(Matrix({{1.0, 2.0}}), &out).ok());
}

TEST(RegressionTreeTest, UnprunedTreeMemorisesDistinctPoints) {
  // Default options grow fully: each distinct x gets its own leaf.
  RegressionTree tree;
  std::vector<Vector> xs = {{1}, {2}, {3}, {4}, {5}};
  Vector ys = {3, 1, 4, 1, 5};
  ASSERT_TRUE(tree.Fit(xs, ys).ok());
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(tree.Predict(xs[i]).ValueOrDie(), ys[i], 1e-9);
  }
}

TEST(RegressionTreeTest, IdenticalFeaturesCannotSplit) {
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit({{7}, {7}, {7}, {7}}, {1, 2, 3, 4}).ok());
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_NEAR(tree.Predict({7.0}).ValueOrDie(), 2.5, 1e-12);
}

}  // namespace
}  // namespace midas
