#include "optimizer/best_in_pareto.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

// A small Pareto set: (seconds, dollars).
const std::vector<Vector> kPareto = {
    {10.0, 0.08}, {20.0, 0.04}, {40.0, 0.02}, {80.0, 0.01}};

TEST(BestInParetoTest, UnconstrainedUsesWeightedSum) {
  QueryPolicy policy;
  policy.weights = {1.0, 0.0};  // time only
  EXPECT_EQ(BestInPareto(kPareto, policy).ValueOrDie(), 0u);
  policy.weights = {0.0, 1.0};  // money only
  EXPECT_EQ(BestInPareto(kPareto, policy).ValueOrDie(), 3u);
}

TEST(BestInParetoTest, ConstraintsFilterFirst) {
  QueryPolicy policy;
  policy.weights = {1.0, 0.0};  // prefers the fastest...
  policy.constraints = {100.0, 0.03};  // ...but must cost <= $0.03
  // Feasible: indices 2 and 3; fastest of them is 2.
  EXPECT_EQ(BestInPareto(kPareto, policy).ValueOrDie(), 2u);
}

TEST(BestInParetoTest, TimeConstraintOnly) {
  QueryPolicy policy;
  policy.weights = {0.0, 1.0};            // cheapest...
  policy.constraints = {30.0, 1000.0};    // ...finishing within 30 s
  EXPECT_EQ(BestInPareto(kPareto, policy).ValueOrDie(), 1u);
}

TEST(BestInParetoTest, InfeasibleConstraintsFallBackToWholeSet) {
  // Algorithm 2 lines 5-6: when PB is empty, rank all of P.
  QueryPolicy policy;
  policy.weights = {1.0, 1.0};
  policy.constraints = {1.0, 0.001};  // nothing qualifies
  auto chosen = BestInPareto(kPareto, policy);
  ASSERT_TRUE(chosen.ok());
  EXPECT_LT(*chosen, kPareto.size());
}

TEST(BestInParetoTest, PartialConstraintVectorAllowed) {
  QueryPolicy policy;
  policy.weights = {0.0, 1.0};
  policy.constraints = {30.0};  // constrain only the first metric
  EXPECT_EQ(BestInPareto(kPareto, policy).ValueOrDie(), 1u);
}

TEST(BestInParetoTest, SingletonSet) {
  QueryPolicy policy;
  policy.weights = {0.5, 0.5};
  EXPECT_EQ(BestInPareto({{3.0, 3.0}}, policy).ValueOrDie(), 0u);
}

TEST(BestInParetoTest, RejectsEmptySet) {
  QueryPolicy policy;
  policy.weights = {1.0, 1.0};
  EXPECT_FALSE(BestInPareto({}, policy).ok());
}

TEST(BestInParetoTest, RejectsWeightArityMismatch) {
  QueryPolicy policy;
  policy.weights = {1.0};
  EXPECT_FALSE(BestInPareto(kPareto, policy).ok());
}

TEST(BestInParetoTest, RejectsTooManyConstraints) {
  QueryPolicy policy;
  policy.weights = {1.0, 1.0};
  policy.constraints = {1.0, 1.0, 1.0};
  EXPECT_FALSE(BestInPareto(kPareto, policy).ok());
}

TEST(BestInParetoTest, RejectsRaggedCosts) {
  QueryPolicy policy;
  policy.weights = {1.0, 1.0};
  EXPECT_FALSE(BestInPareto({{1.0, 2.0}, {1.0}}, policy).ok());
}

// Property: the choice always satisfies the constraints when any plan does.
class BestInParetoConstraintTest
    : public ::testing::TestWithParam<double> {};

TEST_P(BestInParetoConstraintTest, ChoiceIsFeasibleWhenPossible) {
  const double budget = GetParam();
  QueryPolicy policy;
  policy.weights = {1.0, 0.0};
  policy.constraints = {1e9, budget};
  bool any_feasible = false;
  for (const Vector& c : kPareto) {
    if (c[1] <= budget) any_feasible = true;
  }
  auto chosen = BestInPareto(kPareto, policy);
  ASSERT_TRUE(chosen.ok());
  if (any_feasible) {
    EXPECT_LE(kPareto[*chosen][1], budget);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BestInParetoConstraintTest,
                         ::testing::Values(0.005, 0.015, 0.03, 0.05, 0.1));

}  // namespace
}  // namespace midas
