#include "optimizer/configuration_problem.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

ConfigurationProblem MakeProblem() {
  // 3 x 4 configuration grid; cost = (i, j) directly.
  return ConfigurationProblem(
      "grid", {3, 4}, 2, [](const std::vector<size_t>& cfg) -> Vector {
        return {static_cast<double>(cfg[0]), static_cast<double>(cfg[1])};
      });
}

TEST(ConfigurationProblemTest, ShapeAndBounds) {
  ConfigurationProblem problem = MakeProblem();
  EXPECT_EQ(problem.num_variables(), 2u);
  EXPECT_EQ(problem.num_objectives(), 2u);
  EXPECT_EQ(problem.bounds(0), std::make_pair(0.0, 2.0));
  EXPECT_EQ(problem.bounds(1), std::make_pair(0.0, 3.0));
  EXPECT_EQ(problem.SpaceSize(), 12u);
}

TEST(ConfigurationProblemTest, DecodeRoundsToNearest) {
  ConfigurationProblem problem = MakeProblem();
  EXPECT_EQ(problem.Decode({0.4, 2.6}), (std::vector<size_t>{0, 3}));
  EXPECT_EQ(problem.Decode({1.5, 0.49}), (std::vector<size_t>{2, 0}));
}

TEST(ConfigurationProblemTest, DecodeClampsOutOfRange) {
  ConfigurationProblem problem = MakeProblem();
  EXPECT_EQ(problem.Decode({-5.0, 99.0}), (std::vector<size_t>{0, 3}));
}

TEST(ConfigurationProblemTest, DecodeShortVectorPadsWithZero) {
  ConfigurationProblem problem = MakeProblem();
  EXPECT_EQ(problem.Decode({1.0}), (std::vector<size_t>{1, 0}));
}

TEST(ConfigurationProblemTest, EvaluateRoutesThroughEvaluator) {
  ConfigurationProblem problem = MakeProblem();
  EXPECT_EQ(problem.Evaluate({2.0, 3.0}), (Vector{2.0, 3.0}));
}

TEST(ConfigurationProblemTest, Example31SpaceSize) {
  // The 70 vCPU x 260 GiB pool as a two-dimensional config space.
  ConfigurationProblem problem(
      "ec2", {70, 260}, 1,
      [](const std::vector<size_t>&) -> Vector { return {0.0}; });
  EXPECT_EQ(problem.SpaceSize(), 18200u);
}

TEST(ConfigurationProblemDeathTest, RejectsEmptyDims) {
  EXPECT_DEATH(ConfigurationProblem("bad", {}, 1,
                                    [](const std::vector<size_t>&) -> Vector {
                                      return {0.0};
                                    }),
               "dimension");
}

}  // namespace
}  // namespace midas
