#include "optimizer/genetic_operators.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(RandomIndividualTest, WithinBoundsAndEvaluated) {
  Schaffer problem;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Individual ind = RandomIndividual(problem, &rng);
    ASSERT_EQ(ind.variables.size(), 1u);
    EXPECT_GE(ind.variables[0], -3.0);
    EXPECT_LE(ind.variables[0], 5.0);
    EXPECT_EQ(ind.objectives.size(), 2u);
    EXPECT_DOUBLE_EQ(ind.objectives[0],
                     ind.variables[0] * ind.variables[0]);
  }
}

TEST(SbxCrossoverTest, ChildrenWithinBounds) {
  Zdt1 problem(5);
  Rng rng(2);
  SbxOptions options;
  options.crossover_probability = 1.0;
  const Vector p1 = {0.1, 0.2, 0.3, 0.4, 0.5};
  const Vector p2 = {0.9, 0.8, 0.7, 0.6, 0.5};
  for (int i = 0; i < 50; ++i) {
    auto [c1, c2] = SbxCrossover(problem, p1, p2, options, &rng);
    for (double v : c1) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    for (double v : c2) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(SbxCrossoverTest, ZeroProbabilityCopiesParents) {
  Zdt1 problem(3);
  Rng rng(3);
  SbxOptions options;
  options.crossover_probability = 0.0;
  const Vector p1 = {0.1, 0.2, 0.3};
  const Vector p2 = {0.9, 0.8, 0.7};
  auto [c1, c2] = SbxCrossover(problem, p1, p2, options, &rng);
  EXPECT_EQ(c1, p1);
  EXPECT_EQ(c2, p2);
}

TEST(SbxCrossoverTest, ChildrenMixParents) {
  Zdt1 problem(10);
  Rng rng(4);
  SbxOptions options;
  options.crossover_probability = 1.0;
  Vector p1(10, 0.2), p2(10, 0.8);
  bool changed = false;
  for (int i = 0; i < 20 && !changed; ++i) {
    auto [c1, c2] = SbxCrossover(problem, p1, p2, options, &rng);
    changed = c1 != p1 || c2 != p2;
  }
  EXPECT_TRUE(changed);
}

TEST(PolynomialMutationTest, StaysWithinBounds) {
  Zdt1 problem(5);
  Rng rng(5);
  MutationOptions options;
  options.mutation_probability = 1.0;
  for (int i = 0; i < 100; ++i) {
    const Vector mutated =
        PolynomialMutation(problem, {0.0, 0.25, 0.5, 0.75, 1.0}, options,
                           &rng);
    for (double v : mutated) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(PolynomialMutationTest, ZeroRateLeavesUnchangedMostly) {
  Zdt1 problem(4);
  Rng rng(6);
  MutationOptions options;
  options.mutation_probability = 1e-12;
  const Vector x = {0.1, 0.2, 0.3, 0.4};
  EXPECT_EQ(PolynomialMutation(problem, x, options, &rng), x);
}

TEST(PolynomialMutationTest, DefaultRateIsOneOverN) {
  Zdt1 problem(30);
  Rng rng(7);
  MutationOptions options;  // mutation_probability <= 0 -> 1/n
  int mutated_vars = 0;
  const Vector x(30, 0.5);
  for (int trial = 0; trial < 200; ++trial) {
    const Vector m = PolynomialMutation(problem, x, options, &rng);
    for (size_t i = 0; i < m.size(); ++i) {
      if (m[i] != x[i]) ++mutated_vars;
    }
  }
  // Expected 200 * 30 * (1/30) = 200 mutations; allow wide slack.
  EXPECT_GT(mutated_vars, 100);
  EXPECT_LT(mutated_vars, 400);
}

TEST(BinaryTournamentTest, PrefersLowerRank) {
  std::vector<Individual> population(2);
  population[0].rank = 0;
  population[0].crowding = 0.0;
  population[1].rank = 5;
  population[1].crowding = 100.0;
  Rng rng(8);
  int wins_for_rank0 = 0;
  for (int i = 0; i < 100; ++i) {
    if (&BinaryTournament(population, &rng) == &population[0]) {
      ++wins_for_rank0;
    }
  }
  // rank 0 wins every mixed matchup and half of the self-matchups.
  EXPECT_GT(wins_for_rank0, 60);
}

TEST(BinaryTournamentTest, BreaksRankTiesByCrowding) {
  std::vector<Individual> population(2);
  population[0].rank = 0;
  population[0].crowding = 10.0;
  population[1].rank = 0;
  population[1].crowding = 1.0;
  Rng rng(9);
  int wins_for_crowded = 0;
  for (int i = 0; i < 100; ++i) {
    if (&BinaryTournament(population, &rng) == &population[0]) {
      ++wins_for_crowded;
    }
  }
  EXPECT_GT(wins_for_crowded, 60);
}

}  // namespace
}  // namespace midas
