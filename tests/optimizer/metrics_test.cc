#include "optimizer/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(Hypervolume2DTest, SinglePointRectangle) {
  auto hv = Hypervolume2D({{1.0, 1.0}}, {3.0, 3.0});
  ASSERT_TRUE(hv.ok());
  EXPECT_DOUBLE_EQ(*hv, 4.0);
}

TEST(Hypervolume2DTest, StaircaseAccumulates) {
  // Points (1,2) and (2,1) against reference (3,3):
  // (3-1)(3-2) + (3-2)(2-1) = 2 + 1 = 3.
  auto hv = Hypervolume2D({{1, 2}, {2, 1}}, {3, 3});
  ASSERT_TRUE(hv.ok());
  EXPECT_DOUBLE_EQ(*hv, 3.0);
}

TEST(Hypervolume2DTest, DominatedPointAddsNothing) {
  const double base =
      Hypervolume2D({{1, 1}}, {3, 3}).ValueOrDie();
  const double with_dominated =
      Hypervolume2D({{1, 1}, {2, 2}}, {3, 3}).ValueOrDie();
  EXPECT_DOUBLE_EQ(base, with_dominated);
}

TEST(Hypervolume2DTest, PointsOutsideReferenceIgnored) {
  auto hv = Hypervolume2D({{4.0, 4.0}}, {3.0, 3.0});
  ASSERT_TRUE(hv.ok());
  EXPECT_DOUBLE_EQ(*hv, 0.0);
}

TEST(Hypervolume2DTest, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(Hypervolume2D({}, {1, 1}).ValueOrDie(), 0.0);
}

TEST(Hypervolume2DTest, RejectsBadReference) {
  EXPECT_FALSE(Hypervolume2D({{1, 1}}, {1, 1, 1}).ok());
  EXPECT_FALSE(Hypervolume2D({{1, 1, 1}}, {2, 2}).ok());
}

TEST(HypervolumeMonteCarloTest, AgreesWithExact2D) {
  const std::vector<Vector> front = {{1, 2}, {2, 1}};
  const Vector reference = {3, 3};
  const double exact = Hypervolume2D(front, reference).ValueOrDie();
  const double approx =
      HypervolumeMonteCarlo(front, reference, 200000, 7).ValueOrDie();
  EXPECT_NEAR(approx, exact, 0.05 * exact);
}

TEST(HypervolumeMonteCarloTest, HandlesThreeObjectives) {
  // Single point (1,1,1) vs reference (2,2,2): exact volume 1.
  auto hv = HypervolumeMonteCarlo({{1, 1, 1}}, {2, 2, 2}, 100000, 9);
  ASSERT_TRUE(hv.ok());
  EXPECT_NEAR(*hv, 1.0, 0.05);
}

TEST(HypervolumeMonteCarloTest, DeterministicGivenSeed) {
  const std::vector<Vector> front = {{1, 2}, {2, 1}};
  EXPECT_DOUBLE_EQ(
      HypervolumeMonteCarlo(front, {3, 3}, 10000, 5).ValueOrDie(),
      HypervolumeMonteCarlo(front, {3, 3}, 10000, 5).ValueOrDie());
}

TEST(HypervolumeMonteCarloTest, RejectsZeroSamples) {
  EXPECT_FALSE(HypervolumeMonteCarlo({{1, 1}}, {2, 2}, 0).ok());
}

TEST(IgdTest, PerfectFrontHasZeroDistance) {
  const std::vector<Vector> front = {{0, 1}, {0.5, 0.5}, {1, 0}};
  EXPECT_DOUBLE_EQ(
      InvertedGenerationalDistance(front, front).ValueOrDie(), 0.0);
}

TEST(IgdTest, OffsetFrontHasPositiveDistance) {
  const std::vector<Vector> reference = {{0, 1}, {1, 0}};
  const std::vector<Vector> shifted = {{0.1, 1.1}, {1.1, 0.1}};
  auto igd = InvertedGenerationalDistance(shifted, reference);
  ASSERT_TRUE(igd.ok());
  EXPECT_NEAR(*igd, std::sqrt(0.02), 1e-9);
}

TEST(IgdTest, RejectsEmptyFronts) {
  EXPECT_FALSE(InvertedGenerationalDistance({}, {{1, 1}}).ok());
  EXPECT_FALSE(InvertedGenerationalDistance({{1, 1}}, {}).ok());
}

TEST(SpacingTest, UniformFrontHasZeroSpacing) {
  const std::vector<Vector> front = {{0, 3}, {1, 2}, {2, 1}, {3, 0}};
  EXPECT_NEAR(Spacing2D(front).ValueOrDie(), 0.0, 1e-12);
}

TEST(SpacingTest, IrregularFrontHasPositiveSpacing) {
  const std::vector<Vector> front = {{0, 3}, {0.1, 2.9}, {3, 0}};
  EXPECT_GT(Spacing2D(front).ValueOrDie(), 0.5);
}

TEST(SpacingTest, NeedsThreePoints) {
  EXPECT_FALSE(Spacing2D({{1, 1}, {2, 2}}).ok());
}

}  // namespace
}  // namespace midas
