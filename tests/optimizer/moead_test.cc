#include "optimizer/moead.h"

#include <cmath>

#include <gtest/gtest.h>

#include "optimizer/metrics.h"
#include "optimizer/pareto.h"

namespace midas {
namespace {

MoeadOptions SmallRun(uint64_t seed = 1) {
  MoeadOptions options;
  options.population_size = 60;
  options.generations = 60;
  options.seed = seed;
  return options;
}

TEST(TchebycheffTest, MaxWeightedDeviation) {
  EXPECT_DOUBLE_EQ(TchebycheffCost({2, 3}, {0.5, 0.5}, {0, 0}), 1.5);
  EXPECT_DOUBLE_EQ(TchebycheffCost({2, 3}, {1.0, 0.0}, {0, 0}),
                   2.0);  // zero weight epsilon-ed, max is metric 0
}

TEST(TchebycheffTest, IdealPointCostsNothing) {
  EXPECT_DOUBLE_EQ(TchebycheffCost({1, 2}, {0.5, 0.5}, {1, 2}), 0.0);
}

TEST(MoeadTest, SolvesSchaffer) {
  Moead moead(SmallRun());
  auto result = moead.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->front.empty());
  for (const Vector& x : result->FrontVariables()) {
    EXPECT_GT(x[0], -0.3);
    EXPECT_LT(x[0], 2.3);
  }
}

TEST(MoeadTest, Zdt1FrontCloseToTruth) {
  MoeadOptions options;
  options.population_size = 100;
  options.generations = 150;
  Moead moead(options);
  auto result = moead.Optimize(Zdt1(10));
  ASSERT_TRUE(result.ok());
  const auto front = result->FrontObjectives();
  ASSERT_GE(front.size(), 10u);
  double total_gap = 0.0;
  for (const Vector& f : front) {
    total_gap += std::abs(f[1] - (1.0 - std::sqrt(f[0])));
  }
  EXPECT_LT(total_gap / static_cast<double>(front.size()), 0.15);
}

TEST(MoeadTest, CoversNonConvexZdt2Front) {
  MoeadOptions options;
  options.population_size = 100;
  options.generations = 150;
  Moead moead(options);
  auto result = moead.Optimize(Zdt2(10));
  ASSERT_TRUE(result.ok());
  // Tchebycheff decomposition (unlike plain weighted sums) reaches
  // non-convex front regions.
  int interior = 0;
  for (const Vector& f : result->FrontObjectives()) {
    if (f[0] > 0.2 && f[0] < 0.8) ++interior;
  }
  EXPECT_GT(interior, 5);
}

TEST(MoeadTest, ArchiveIsMutuallyNonDominated) {
  Moead moead(SmallRun(5));
  auto result = moead.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  const auto front = result->FrontObjectives();
  for (size_t i = 0; i < front.size(); ++i) {
    for (size_t j = 0; j < front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Dominates(front[i], front[j]));
      }
    }
  }
}

TEST(MoeadTest, DeterministicGivenSeed) {
  auto r1 = Moead(SmallRun(42)).Optimize(Schaffer());
  auto r2 = Moead(SmallRun(42)).Optimize(Schaffer());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->FrontObjectives(), r2->FrontObjectives());
}

TEST(MoeadTest, HypervolumeComparableToNsga2) {
  MoeadOptions moead_options;
  moead_options.population_size = 80;
  moead_options.generations = 100;
  Nsga2Options nsga_options;
  nsga_options.population_size = 80;
  nsga_options.generations = 100;
  auto moead = Moead(moead_options).Optimize(Zdt1(8));
  auto nsga2 = Nsga2(nsga_options).Optimize(Zdt1(8));
  ASSERT_TRUE(moead.ok());
  ASSERT_TRUE(nsga2.ok());
  const Vector reference = {1.1, 1.1};
  const double hv_moead =
      Hypervolume2D(moead->FrontObjectives(), reference).ValueOrDie();
  const double hv_nsga2 =
      Hypervolume2D(nsga2->FrontObjectives(), reference).ValueOrDie();
  EXPECT_GT(hv_moead, hv_nsga2 * 0.85);
}

TEST(MoeadTest, RejectsTinyPopulation) {
  MoeadOptions options;
  options.population_size = 2;
  EXPECT_FALSE(Moead(options).Optimize(Schaffer()).ok());
}

TEST(MoeadTest, RejectsTinyNeighborhood) {
  MoeadOptions options = SmallRun();
  options.neighborhood = 1;
  EXPECT_FALSE(Moead(options).Optimize(Schaffer()).ok());
}

TEST(MoeadTest, ThreeObjectivesUnimplemented) {
  class ThreeObjective : public MooProblem {
   public:
    std::string name() const override { return "3obj"; }
    size_t num_variables() const override { return 1; }
    size_t num_objectives() const override { return 3; }
    std::pair<double, double> bounds(size_t) const override {
      return {0, 1};
    }
    Vector Evaluate(const Vector& x) const override {
      return {x[0], 1 - x[0], x[0] * x[0]};
    }
  };
  auto result = Moead(SmallRun()).Optimize(ThreeObjective());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace midas
