#include "optimizer/nsga2.h"

#include <cmath>

#include <gtest/gtest.h>

#include "optimizer/metrics.h"
#include "optimizer/pareto.h"

namespace midas {
namespace {

Nsga2Options SmallRun(uint64_t seed = 1) {
  Nsga2Options options;
  options.population_size = 60;
  options.generations = 60;
  options.seed = seed;
  return options;
}

TEST(Nsga2Test, SolvesSchaffer) {
  Nsga2 nsga2(SmallRun());
  auto result = nsga2.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->front.empty());
  // Every front member should lie near the Pareto set x in [0, 2].
  for (const Vector& x : result->FrontVariables()) {
    EXPECT_GT(x[0], -0.3);
    EXPECT_LT(x[0], 2.3);
  }
}

TEST(Nsga2Test, Zdt1FrontApproachesTheoreticalCurve) {
  Nsga2Options options;
  options.population_size = 100;
  options.generations = 150;
  Nsga2 nsga2(options);
  auto result = nsga2.Optimize(Zdt1(10));
  ASSERT_TRUE(result.ok());
  // On ZDT1 the true front is f2 = 1 - sqrt(f1); measure mean deviation.
  double total_gap = 0.0;
  const auto front = result->FrontObjectives();
  ASSERT_GE(front.size(), 10u);
  for (const Vector& f : front) {
    total_gap += std::abs(f[1] - (1.0 - std::sqrt(f[0])));
  }
  EXPECT_LT(total_gap / static_cast<double>(front.size()), 0.1);
}

TEST(Nsga2Test, Zdt2NonConvexFrontCovered) {
  // The non-convex case WSM cannot cover (paper §2.6): NSGA-II must return
  // interior points, i.e., points with f1 well inside (0, 1).
  Nsga2Options options;
  options.population_size = 100;
  options.generations = 150;
  Nsga2 nsga2(options);
  auto result = nsga2.Optimize(Zdt2(10));
  ASSERT_TRUE(result.ok());
  int interior = 0;
  for (const Vector& f : result->FrontObjectives()) {
    if (f[0] > 0.2 && f[0] < 0.8) ++interior;
  }
  EXPECT_GT(interior, 5);
}

TEST(Nsga2Test, FrontIsMutuallyNonDominated) {
  Nsga2 nsga2(SmallRun(7));
  auto result = nsga2.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  const auto front = result->FrontObjectives();
  for (size_t i = 0; i < front.size(); ++i) {
    for (size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates(front[i], front[j]));
    }
  }
}

TEST(Nsga2Test, DeterministicGivenSeed) {
  auto r1 = Nsga2(SmallRun(42)).Optimize(Schaffer());
  auto r2 = Nsga2(SmallRun(42)).Optimize(Schaffer());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->front.size(), r2->front.size());
  EXPECT_EQ(r1->FrontObjectives(), r2->FrontObjectives());
}

TEST(Nsga2Test, MoreGenerationsDoNotWorsenHypervolume) {
  Nsga2Options short_run = SmallRun(5);
  short_run.generations = 5;
  Nsga2Options long_run = SmallRun(5);
  long_run.generations = 100;
  auto r_short = Nsga2(short_run).Optimize(Zdt1(8));
  auto r_long = Nsga2(long_run).Optimize(Zdt1(8));
  ASSERT_TRUE(r_short.ok());
  ASSERT_TRUE(r_long.ok());
  const Vector reference = {1.1, 5.0};
  const double hv_short =
      Hypervolume2D(r_short->FrontObjectives(), reference).ValueOrDie();
  const double hv_long =
      Hypervolume2D(r_long->FrontObjectives(), reference).ValueOrDie();
  EXPECT_GE(hv_long, hv_short * 0.98);
}

TEST(Nsga2Test, RejectsTinyPopulation) {
  Nsga2Options options;
  options.population_size = 2;
  EXPECT_FALSE(Nsga2(options).Optimize(Schaffer()).ok());
}

TEST(RankAndCrowdTest, AssignsRanksAcrossFronts) {
  std::vector<Individual> population(3);
  population[0].objectives = {1, 1};
  population[1].objectives = {2, 2};
  population[2].objectives = {0, 3};
  RankAndCrowd(&population);
  EXPECT_EQ(population[0].rank, 0);
  EXPECT_EQ(population[1].rank, 1);
  EXPECT_EQ(population[2].rank, 0);
}

TEST(SelectByRankAndCrowdingTest, KeepsBestAndTruncates) {
  std::vector<Individual> pool(4);
  pool[0].objectives = {5, 5};
  pool[1].objectives = {1, 1};
  pool[2].objectives = {2, 3};
  pool[3].objectives = {3, 2};
  auto selected = SelectByRankAndCrowding(std::move(pool), 2);
  ASSERT_EQ(selected.size(), 2u);
  // {1,1} dominates everything; it must survive.
  EXPECT_EQ(selected[0].objectives, (Vector{1, 1}));
}

}  // namespace
}  // namespace midas
