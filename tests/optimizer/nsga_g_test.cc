#include "optimizer/nsga_g.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "optimizer/pareto.h"

namespace midas {
namespace {

NsgaGOptions SmallRun(uint64_t seed = 1) {
  NsgaGOptions options;
  options.population_size = 60;
  options.generations = 60;
  options.seed = seed;
  return options;
}

TEST(NsgaGTest, SolvesSchaffer) {
  NsgaG nsga_g(SmallRun());
  auto result = nsga_g.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->front.empty());
  for (const Vector& x : result->FrontVariables()) {
    EXPECT_GT(x[0], -0.3);
    EXPECT_LT(x[0], 2.3);
  }
}

TEST(NsgaGTest, Zdt1FrontCloseToTruth) {
  NsgaGOptions options;
  options.population_size = 100;
  options.generations = 150;
  NsgaG nsga_g(options);
  auto result = nsga_g.Optimize(Zdt1(10));
  ASSERT_TRUE(result.ok());
  double total_gap = 0.0;
  const auto front = result->FrontObjectives();
  ASSERT_GE(front.size(), 10u);
  for (const Vector& f : front) {
    total_gap += std::abs(f[1] - (1.0 - std::sqrt(f[0])));
  }
  EXPECT_LT(total_gap / static_cast<double>(front.size()), 0.15);
}

TEST(NsgaGTest, FrontIsMutuallyNonDominated) {
  NsgaG nsga_g(SmallRun(3));
  auto result = nsga_g.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  const auto front = result->FrontObjectives();
  for (size_t i = 0; i < front.size(); ++i) {
    for (size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates(front[i], front[j]));
    }
  }
}

TEST(NsgaGTest, DeterministicGivenSeed) {
  auto r1 = NsgaG(SmallRun(9)).Optimize(Schaffer());
  auto r2 = NsgaG(SmallRun(9)).Optimize(Schaffer());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->FrontObjectives(), r2->FrontObjectives());
}

TEST(NsgaGTest, RejectsZeroGridDivisions) {
  NsgaGOptions options = SmallRun();
  options.grid_divisions = 0;
  EXPECT_FALSE(NsgaG(options).Optimize(Schaffer()).ok());
}

TEST(NsgaGTest, RejectsTinyPopulation) {
  NsgaGOptions options;
  options.population_size = 3;
  EXPECT_FALSE(NsgaG(options).Optimize(Schaffer()).ok());
}

TEST(GridSelectTest, ReturnsWholeFrontWhenItFits) {
  const std::vector<Vector> objectives = {{1, 2}, {2, 1}};
  const std::vector<size_t> front = {0, 1};
  Rng rng(1);
  EXPECT_EQ(GridSelect(objectives, front, 5, 4, &rng), front);
}

TEST(GridSelectTest, TruncatesToRequestedCount) {
  std::vector<Vector> objectives;
  std::vector<size_t> front;
  for (int i = 0; i < 20; ++i) {
    objectives.push_back({static_cast<double>(i),
                          static_cast<double>(20 - i)});
    front.push_back(i);
  }
  Rng rng(2);
  const auto selected = GridSelect(objectives, front, 7, 4, &rng);
  EXPECT_EQ(selected.size(), 7u);
  // No duplicates.
  std::set<size_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), 7u);
}

TEST(GridSelectTest, SpreadsAcrossObjectiveSpace) {
  // Two clusters: 10 points near (0, 10), 10 near (10, 0). Selecting 4
  // members should take from both clusters (grid cells round-robin).
  std::vector<Vector> objectives;
  std::vector<size_t> front;
  Rng jitter(3);
  for (int i = 0; i < 10; ++i) {
    objectives.push_back({jitter.Uniform(0, 1), 10.0 + jitter.Uniform(0, 1)});
    front.push_back(objectives.size() - 1);
  }
  for (int i = 0; i < 10; ++i) {
    objectives.push_back({10.0 + jitter.Uniform(0, 1), jitter.Uniform(0, 1)});
    front.push_back(objectives.size() - 1);
  }
  Rng rng(4);
  // Selecting 12 of 20 members exceeds either cluster's size (10), so both
  // clusters must contribute regardless of the random bucket order.
  const auto selected = GridSelect(objectives, front, 12, 4, &rng);
  int low_cluster = 0, high_cluster = 0;
  for (size_t idx : selected) {
    (objectives[idx][0] < 5.0 ? low_cluster : high_cluster) += 1;
  }
  EXPECT_GT(low_cluster, 0);
  EXPECT_GT(high_cluster, 0);
}

TEST(GridSelectTest, ZeroWantReturnsEmpty) {
  Rng rng(5);
  EXPECT_TRUE(GridSelect({{1, 1}, {2, 2}}, {0, 1}, 0, 4, &rng).empty());
}

}  // namespace
}  // namespace midas
