#include "optimizer/pareto_archive.h"

#include <numeric>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "optimizer/pareto.h"

namespace midas {
namespace {

size_t InsertAll(ParetoArchiveCore* archive,
                 const std::vector<Vector>& costs) {
  std::vector<size_t> evicted;
  size_t accepted = 0;
  for (const Vector& c : costs) {
    if (archive->Insert(c, &evicted)) ++accepted;
  }
  return accepted;
}

TEST(ParetoArchiveCoreTest, KeepsNonDominatedInArrivalOrder) {
  ParetoArchiveCore archive;
  InsertAll(&archive, {{1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}});
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{1, 5}, {2, 4}, {3, 3}}));
}

TEST(ParetoArchiveCoreTest, DominatedInsertLeavesArchiveUntouched) {
  ParetoArchiveCore archive;
  std::vector<size_t> evicted;
  ASSERT_TRUE(archive.Insert({1, 1}, &evicted));
  EXPECT_FALSE(archive.Insert({2, 2}, &evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{1, 1}}));
  EXPECT_EQ(archive.dominated_rejections(), 1u);
}

TEST(ParetoArchiveCoreTest, EvictionsReportedAscendingAndCompacted) {
  ParetoArchiveCore archive;
  std::vector<size_t> evicted;
  ASSERT_TRUE(archive.Insert({1, 9}, &evicted));
  ASSERT_TRUE(archive.Insert({5, 5}, &evicted));
  ASSERT_TRUE(archive.Insert({9, 1}, &evicted));
  // {0, 4} dominates the members at positions 0 and 1 but not {9, 1}.
  ASSERT_TRUE(archive.Insert({0, 4}, &evicted));
  EXPECT_EQ(evicted, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{9, 1}, {0, 4}}));
  EXPECT_EQ(archive.evictions(), 2u);
}

TEST(ParetoArchiveCoreTest, TakeCostsResetsMembershipButKeepsStats) {
  ParetoArchiveCore archive;
  std::vector<size_t> evicted;
  ASSERT_TRUE(archive.Insert({1, 2}, &evicted));
  EXPECT_EQ(archive.TakeCosts(), (std::vector<Vector>{{1, 2}}));
  EXPECT_TRUE(archive.empty());
  // The moved-out member no longer blocks re-insertion as a duplicate...
  EXPECT_TRUE(archive.Insert({1, 2}, &evicted));
  // ...while the counters keep accumulating across the reset.
  EXPECT_EQ(archive.considered(), 2u);
  EXPECT_EQ(archive.duplicate_rejections(), 0u);
}

TEST(ParetoArchiveCoreTest, StatsAccounting) {
  Rng rng(99);
  std::vector<Vector> costs(400, Vector(2));
  for (Vector& c : costs) {
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 6));
  }
  ParetoArchiveCore archive;
  const size_t accepted = InsertAll(&archive, costs);
  EXPECT_EQ(archive.considered(), costs.size());
  EXPECT_EQ(accepted + archive.duplicate_rejections() +
                archive.dominated_rejections(),
            costs.size());
  EXPECT_EQ(archive.size() + archive.evictions(), accepted);
  EXPECT_GE(archive.peak_size(), archive.size());
  EXPECT_LE(archive.peak_size(), accepted);
}

TEST(ParetoArchiveTest, DuplicateKeepsFirstPayload) {
  ParetoArchive<std::string> archive;
  EXPECT_TRUE(archive.Insert({1, 2}, "first"));
  EXPECT_FALSE(archive.Insert({1, 2}, "second"));
  EXPECT_EQ(archive.payloads(), (std::vector<std::string>{"first"}));
  EXPECT_EQ(archive.duplicate_rejections(), 1u);
}

TEST(ParetoArchiveTest, PayloadsStayAlignedThroughEvictions) {
  ParetoArchive<std::string> archive;
  ASSERT_TRUE(archive.Insert({1, 9}, "a"));
  ASSERT_TRUE(archive.Insert({5, 5}, "b"));
  ASSERT_TRUE(archive.Insert({9, 1}, "c"));
  ASSERT_TRUE(archive.Insert({0, 4}, "d"));  // evicts "a" and "b"
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{9, 1}, {0, 4}}));
  EXPECT_EQ(archive.payloads(), (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(archive.TakeCosts(), (std::vector<Vector>{{9, 1}, {0, 4}}));
  EXPECT_EQ(archive.TakePayloads(), (std::vector<std::string>{"c", "d"}));
  EXPECT_TRUE(archive.empty());
}

// Materialize-everything reference: the global Pareto front with one
// (first) representative per distinct cost vector, in arrival order —
// exactly what FromCandidates produces.
void ReferenceFront(const std::vector<Vector>& costs,
                    std::vector<Vector>* front_costs,
                    std::vector<int>* front_ids) {
  std::unordered_set<Vector, VectorHash> seen;
  for (size_t idx : ParetoFrontIndices(costs)) {
    if (!seen.insert(costs[idx]).second) continue;
    front_costs->push_back(costs[idx]);
    front_ids->push_back(static_cast<int>(idx));
  }
}

TEST(ParetoArchiveTest, StreamingEqualsMaterializedReferenceRandomized) {
  Rng rng(555);
  for (size_t n : {size_t{0}, size_t{1}, size_t{10}, size_t{100},
                   size_t{500}}) {
    for (size_t arity : {size_t{2}, size_t{3}}) {
      std::vector<Vector> costs(n, Vector(arity));
      for (Vector& c : costs) {
        for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 8));
      }
      ParetoArchive<int> archive;
      for (size_t i = 0; i < n; ++i) {
        archive.Insert(costs[i], static_cast<int>(i));
      }
      std::vector<Vector> want_costs;
      std::vector<int> want_ids;
      ReferenceFront(costs, &want_costs, &want_ids);
      EXPECT_EQ(archive.costs(), want_costs)
          << "n=" << n << " arity=" << arity;
      EXPECT_EQ(archive.payloads(), want_ids)
          << "n=" << n << " arity=" << arity;
      EXPECT_EQ(archive.considered(), n) << "n=" << n << " arity=" << arity;
    }
  }
}

TEST(ParetoArchiveTest, ClearEmptiesBothSides) {
  ParetoArchive<int> archive;
  ASSERT_TRUE(archive.Insert({1, 2}, 0));
  archive.Clear();
  EXPECT_TRUE(archive.empty());
  EXPECT_TRUE(archive.payloads().empty());
  EXPECT_TRUE(archive.Insert({1, 2}, 1));  // not a duplicate after Clear
}

TEST(ParetoArchiveCoreTest, PlainInsertsCarryArrivalSequences) {
  ParetoArchiveCore archive;
  std::vector<size_t> evicted;
  ASSERT_TRUE(archive.Insert({1, 9}, &evicted));
  EXPECT_FALSE(archive.Insert({2, 10}, &evicted));  // dominated, still counted
  ASSERT_TRUE(archive.Insert({9, 1}, &evicted));
  EXPECT_EQ(archive.seqs(), (std::vector<uint64_t>{0, 2}));
}

TEST(ParetoArchiveTest, SequencedDuplicateKeepsSmallestSequence) {
  ParetoArchive<std::string> archive;
  EXPECT_TRUE(archive.InsertSequenced({1, 2}, 7, "late"));
  // Same cost, smaller sequence: the member stays put but adopts the
  // earlier representative's sequence and payload.
  EXPECT_TRUE(archive.InsertSequenced({1, 2}, 3, "early"));
  EXPECT_EQ(archive.payloads(), (std::vector<std::string>{"early"}));
  EXPECT_EQ(archive.seqs(), (std::vector<uint64_t>{3}));
  EXPECT_EQ(archive.duplicate_replacements(), 1u);
  // Same cost, larger sequence: plain duplicate rejection.
  EXPECT_FALSE(archive.InsertSequenced({1, 2}, 5, "later"));
  EXPECT_EQ(archive.payloads(), (std::vector<std::string>{"early"}));
  EXPECT_EQ(archive.duplicate_rejections(), 1u);
}

TEST(ParetoArchiveTest, SortBySequenceRestoresArrivalOrder) {
  ParetoArchive<int> archive;
  EXPECT_TRUE(archive.InsertSequenced({9, 1}, 5, 5));
  EXPECT_TRUE(archive.InsertSequenced({1, 9}, 0, 0));
  EXPECT_TRUE(archive.InsertSequenced({5, 5}, 2, 2));
  archive.SortBySequence();
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{1, 9}, {5, 5}, {9, 1}}));
  EXPECT_EQ(archive.payloads(), (std::vector<int>{0, 2, 5}));
  EXPECT_EQ(archive.seqs(), (std::vector<uint64_t>{0, 2, 5}));
}

// Single-pass reference for the merge suites: every cost in stream order
// through one archive, then payload ids compared against the merged
// result.
void SinglePassArchive(const std::vector<Vector>& costs,
                       ParetoArchive<int>* archive) {
  for (size_t i = 0; i < costs.size(); ++i) {
    archive->Insert(costs[i], static_cast<int>(i));
  }
}

// The satellite's randomized MergeFrom oracle: split the stream K ways
// (round-robin), fold each slice into its own archive with explicit
// global sequences, tree-merge the slices in several shuffled orders, and
// demand the result equals both the single-pass archive and the
// materialized ReferenceFront.
TEST(ParetoArchiveTest, ShardedMergeMatchesSinglePassAndReferenceRandomized) {
  Rng rng(4242);
  for (size_t n : {size_t{1}, size_t{37}, size_t{200}, size_t{500}}) {
    for (size_t arity : {size_t{2}, size_t{3}}) {
      for (size_t k : {size_t{2}, size_t{3}, size_t{7}}) {
        std::vector<Vector> costs(n, Vector(arity));
        for (Vector& c : costs) {
          for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 6));
        }
        ParetoArchive<int> single;
        SinglePassArchive(costs, &single);
        std::vector<Vector> want_costs;
        std::vector<int> want_ids;
        ReferenceFront(costs, &want_costs, &want_ids);
        ASSERT_EQ(single.costs(), want_costs) << "n=" << n << " k=" << k;

        for (int shuffle = 0; shuffle < 4; ++shuffle) {
          // Build K shard archives over a round-robin split of the
          // stream, inserting each shard's costs in stream order.
          std::vector<ParetoArchive<int>> shards(k);
          for (size_t i = 0; i < n; ++i) {
            shards[i % k].InsertSequenced(costs[i], i, static_cast<int>(i));
          }
          // Merge in a random tree order: repeatedly fold a random
          // archive into another random one.
          while (shards.size() > 1) {
            const size_t into = static_cast<size_t>(
                rng.UniformInt(0, static_cast<int>(shards.size()) - 1));
            size_t from = static_cast<size_t>(
                rng.UniformInt(0, static_cast<int>(shards.size()) - 2));
            if (from >= into) ++from;
            shards[into].MergeFrom(std::move(shards[from]));
            shards.erase(shards.begin() + static_cast<long>(from));
          }
          shards.front().SortBySequence();
          EXPECT_EQ(shards.front().costs(), want_costs)
              << "n=" << n << " arity=" << arity << " k=" << k
              << " shuffle=" << shuffle;
          EXPECT_EQ(shards.front().payloads(), want_ids)
              << "n=" << n << " arity=" << arity << " k=" << k
              << " shuffle=" << shuffle;
        }

        // MergeTree: same members through the deterministic balanced tree.
        std::vector<ParetoArchive<int>> shards(k);
        for (size_t i = 0; i < n; ++i) {
          shards[i % k].InsertSequenced(costs[i], i, static_cast<int>(i));
        }
        ParetoArchive<int> merged =
            ParetoArchive<int>::MergeTree(std::move(shards));
        merged.SortBySequence();
        EXPECT_EQ(merged.costs(), want_costs) << "n=" << n << " k=" << k;
        EXPECT_EQ(merged.payloads(), want_ids) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(ParetoArchiveTest, MergeTreeOfEmptyInputIsEmpty) {
  ParetoArchive<int> merged = ParetoArchive<int>::MergeTree({});
  EXPECT_TRUE(merged.empty());
  std::vector<ParetoArchive<int>> empties(3);
  merged = ParetoArchive<int>::MergeTree(std::move(empties));
  EXPECT_TRUE(merged.empty());
}

TEST(ParetoArchiveTest, MergeFromDrainsSourceAndCountsInserts) {
  ParetoArchive<int> a;
  ParetoArchive<int> b;
  ASSERT_TRUE(a.InsertSequenced({1, 9}, 0, 0));
  ASSERT_TRUE(b.InsertSequenced({9, 1}, 1, 1));
  ASSERT_TRUE(b.InsertSequenced({5, 5}, 2, 2));
  a.MergeFrom(std::move(b));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.considered(), 3u);  // 1 direct + 2 merged-in offers
}

}  // namespace
}  // namespace midas
