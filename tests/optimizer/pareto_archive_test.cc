#include "optimizer/pareto_archive.h"

#include <numeric>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "optimizer/pareto.h"

namespace midas {
namespace {

size_t InsertAll(ParetoArchiveCore* archive,
                 const std::vector<Vector>& costs) {
  std::vector<size_t> evicted;
  size_t accepted = 0;
  for (const Vector& c : costs) {
    if (archive->Insert(c, &evicted)) ++accepted;
  }
  return accepted;
}

TEST(ParetoArchiveCoreTest, KeepsNonDominatedInArrivalOrder) {
  ParetoArchiveCore archive;
  InsertAll(&archive, {{1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}});
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{1, 5}, {2, 4}, {3, 3}}));
}

TEST(ParetoArchiveCoreTest, DominatedInsertLeavesArchiveUntouched) {
  ParetoArchiveCore archive;
  std::vector<size_t> evicted;
  ASSERT_TRUE(archive.Insert({1, 1}, &evicted));
  EXPECT_FALSE(archive.Insert({2, 2}, &evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{1, 1}}));
  EXPECT_EQ(archive.dominated_rejections(), 1u);
}

TEST(ParetoArchiveCoreTest, EvictionsReportedAscendingAndCompacted) {
  ParetoArchiveCore archive;
  std::vector<size_t> evicted;
  ASSERT_TRUE(archive.Insert({1, 9}, &evicted));
  ASSERT_TRUE(archive.Insert({5, 5}, &evicted));
  ASSERT_TRUE(archive.Insert({9, 1}, &evicted));
  // {0, 4} dominates the members at positions 0 and 1 but not {9, 1}.
  ASSERT_TRUE(archive.Insert({0, 4}, &evicted));
  EXPECT_EQ(evicted, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{9, 1}, {0, 4}}));
  EXPECT_EQ(archive.evictions(), 2u);
}

TEST(ParetoArchiveCoreTest, TakeCostsResetsMembershipButKeepsStats) {
  ParetoArchiveCore archive;
  std::vector<size_t> evicted;
  ASSERT_TRUE(archive.Insert({1, 2}, &evicted));
  EXPECT_EQ(archive.TakeCosts(), (std::vector<Vector>{{1, 2}}));
  EXPECT_TRUE(archive.empty());
  // The moved-out member no longer blocks re-insertion as a duplicate...
  EXPECT_TRUE(archive.Insert({1, 2}, &evicted));
  // ...while the counters keep accumulating across the reset.
  EXPECT_EQ(archive.considered(), 2u);
  EXPECT_EQ(archive.duplicate_rejections(), 0u);
}

TEST(ParetoArchiveCoreTest, StatsAccounting) {
  Rng rng(99);
  std::vector<Vector> costs(400, Vector(2));
  for (Vector& c : costs) {
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 6));
  }
  ParetoArchiveCore archive;
  const size_t accepted = InsertAll(&archive, costs);
  EXPECT_EQ(archive.considered(), costs.size());
  EXPECT_EQ(accepted + archive.duplicate_rejections() +
                archive.dominated_rejections(),
            costs.size());
  EXPECT_EQ(archive.size() + archive.evictions(), accepted);
  EXPECT_GE(archive.peak_size(), archive.size());
  EXPECT_LE(archive.peak_size(), accepted);
}

TEST(ParetoArchiveTest, DuplicateKeepsFirstPayload) {
  ParetoArchive<std::string> archive;
  EXPECT_TRUE(archive.Insert({1, 2}, "first"));
  EXPECT_FALSE(archive.Insert({1, 2}, "second"));
  EXPECT_EQ(archive.payloads(), (std::vector<std::string>{"first"}));
  EXPECT_EQ(archive.duplicate_rejections(), 1u);
}

TEST(ParetoArchiveTest, PayloadsStayAlignedThroughEvictions) {
  ParetoArchive<std::string> archive;
  ASSERT_TRUE(archive.Insert({1, 9}, "a"));
  ASSERT_TRUE(archive.Insert({5, 5}, "b"));
  ASSERT_TRUE(archive.Insert({9, 1}, "c"));
  ASSERT_TRUE(archive.Insert({0, 4}, "d"));  // evicts "a" and "b"
  EXPECT_EQ(archive.costs(), (std::vector<Vector>{{9, 1}, {0, 4}}));
  EXPECT_EQ(archive.payloads(), (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(archive.TakeCosts(), (std::vector<Vector>{{9, 1}, {0, 4}}));
  EXPECT_EQ(archive.TakePayloads(), (std::vector<std::string>{"c", "d"}));
  EXPECT_TRUE(archive.empty());
}

// Materialize-everything reference: the global Pareto front with one
// (first) representative per distinct cost vector, in arrival order —
// exactly what FromCandidates produces.
void ReferenceFront(const std::vector<Vector>& costs,
                    std::vector<Vector>* front_costs,
                    std::vector<int>* front_ids) {
  std::unordered_set<Vector, VectorHash> seen;
  for (size_t idx : ParetoFrontIndices(costs)) {
    if (!seen.insert(costs[idx]).second) continue;
    front_costs->push_back(costs[idx]);
    front_ids->push_back(static_cast<int>(idx));
  }
}

TEST(ParetoArchiveTest, StreamingEqualsMaterializedReferenceRandomized) {
  Rng rng(555);
  for (size_t n : {size_t{0}, size_t{1}, size_t{10}, size_t{100},
                   size_t{500}}) {
    for (size_t arity : {size_t{2}, size_t{3}}) {
      std::vector<Vector> costs(n, Vector(arity));
      for (Vector& c : costs) {
        for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 8));
      }
      ParetoArchive<int> archive;
      for (size_t i = 0; i < n; ++i) {
        archive.Insert(costs[i], static_cast<int>(i));
      }
      std::vector<Vector> want_costs;
      std::vector<int> want_ids;
      ReferenceFront(costs, &want_costs, &want_ids);
      EXPECT_EQ(archive.costs(), want_costs)
          << "n=" << n << " arity=" << arity;
      EXPECT_EQ(archive.payloads(), want_ids)
          << "n=" << n << " arity=" << arity;
      EXPECT_EQ(archive.considered(), n) << "n=" << n << " arity=" << arity;
    }
  }
}

TEST(ParetoArchiveTest, ClearEmptiesBothSides) {
  ParetoArchive<int> archive;
  ASSERT_TRUE(archive.Insert({1, 2}, 0));
  archive.Clear();
  EXPECT_TRUE(archive.empty());
  EXPECT_TRUE(archive.payloads().empty());
  EXPECT_TRUE(archive.Insert({1, 2}, 1));  // not a duplicate after Clear
}

}  // namespace
}  // namespace midas
