#include "optimizer/pareto.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

TEST(DominanceTest, WeakDominanceAllowsEquality) {
  EXPECT_TRUE(WeaklyDominates({1, 2}, {1, 2}));
  EXPECT_TRUE(WeaklyDominates({1, 2}, {2, 2}));
  EXPECT_FALSE(WeaklyDominates({3, 1}, {2, 2}));
}

TEST(DominanceTest, StandardDominanceNeedsStrictSomewhere) {
  EXPECT_FALSE(Dominates({1, 2}, {1, 2}));
  EXPECT_TRUE(Dominates({1, 1}, {1, 2}));
  EXPECT_TRUE(Dominates({0, 1}, {1, 2}));
  EXPECT_FALSE(Dominates({0, 3}, {1, 2}));
}

TEST(DominanceTest, StrictDominanceEq3) {
  EXPECT_TRUE(StrictlyDominates({0, 1}, {1, 2}));
  EXPECT_FALSE(StrictlyDominates({1, 1}, {1, 2}));  // tie on metric 0
}

TEST(ParetoFrontTest, ExtractsNonDominatedSet) {
  const std::vector<Vector> costs = {
      {1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}};
  const auto front = ParetoFrontIndices(costs);
  EXPECT_EQ(front, (std::vector<size_t>{0, 1, 2}));
}

TEST(ParetoFrontTest, SinglePointIsFront) {
  EXPECT_EQ(ParetoFrontIndices({{1, 1}}).size(), 1u);
}

TEST(ParetoFrontTest, DuplicatesAllSurvive) {
  const auto front = ParetoFrontIndices({{1, 1}, {1, 1}, {2, 2}});
  EXPECT_EQ(front, (std::vector<size_t>{0, 1}));
}

TEST(ParetoFrontTest, EmptyInput) {
  EXPECT_TRUE(ParetoFrontIndices({}).empty());
}

TEST(FastNonDominatedSortTest, LayersByDomination) {
  const std::vector<Vector> costs = {
      {1, 1},  // front 0
      {2, 2},  // front 2: dominated by {1,1} and {1,2}
      {3, 3},  // front 3
      {1, 2},  // front 1: dominated only by {1,1}
  };
  const auto fronts = FastNonDominatedSort(costs);
  ASSERT_EQ(fronts.size(), 4u);
  EXPECT_EQ(fronts[0], (std::vector<size_t>{0}));
  EXPECT_EQ(fronts[1], (std::vector<size_t>{3}));
  EXPECT_EQ(fronts[2], (std::vector<size_t>{1}));
  EXPECT_EQ(fronts[3], (std::vector<size_t>{2}));
}

TEST(FastNonDominatedSortTest, AgreesWithParetoFront) {
  const std::vector<Vector> costs = {
      {5, 1}, {4, 2}, {3, 3}, {2, 4}, {1, 5}, {5, 5}, {4, 4}};
  const auto fronts = FastNonDominatedSort(costs);
  ASSERT_FALSE(fronts.empty());
  std::vector<size_t> sorted_front = fronts[0];
  std::sort(sorted_front.begin(), sorted_front.end());
  EXPECT_EQ(sorted_front, ParetoFrontIndices(costs));
}

TEST(FastNonDominatedSortTest, EveryPointAssignedExactlyOnce) {
  const std::vector<Vector> costs = {
      {1, 9}, {9, 1}, {5, 5}, {2, 8}, {8, 2}, {6, 6}, {3, 3}};
  const auto fronts = FastNonDominatedSort(costs);
  size_t total = 0;
  for (const auto& f : fronts) total += f.size();
  EXPECT_EQ(total, costs.size());
}

// --- Randomized equivalence sweeps against the naive oracles ---

// Costs on a coarse integer grid: small grids force duplicate vectors and
// per-metric ties, the cases where sweep/divide-and-conquer bugs hide.
std::vector<Vector> RandomCosts(Rng* rng, size_t n, size_t arity,
                                int64_t grid) {
  std::vector<Vector> costs(n, Vector(arity));
  for (Vector& c : costs) {
    for (double& v : c) v = static_cast<double>(rng->UniformInt(0, grid));
  }
  return costs;
}

// Pareto front membership straight from the definition of dominance.
std::vector<size_t> FrontByDefinition(const std::vector<Vector>& costs) {
  std::vector<size_t> front;
  for (size_t i = 0; i < costs.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < costs.size() && !dominated; ++j) {
      dominated = j != i && Dominates(costs[j], costs[i]);
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

constexpr size_t kSweepSizes[] = {0, 1, 2, 3, 7, 33, 128};

TEST(FastNonDominatedSortTest, MatchesNaiveOracleRandomized) {
  Rng rng(20260806);
  for (size_t n : kSweepSizes) {
    for (size_t arity = 1; arity <= 5; ++arity) {
      for (int64_t grid : {int64_t{2}, int64_t{5}, int64_t{50}}) {
        const std::vector<Vector> costs = RandomCosts(&rng, n, arity, grid);
        EXPECT_EQ(FastNonDominatedSort(costs), NonDominatedSortNaive(costs))
            << "n=" << n << " arity=" << arity << " grid=" << grid;
      }
    }
  }
}

TEST(FastNonDominatedSortTest, BorrowedOverloadMatchesOwned) {
  Rng rng(7);
  const std::vector<Vector> costs = RandomCosts(&rng, 64, 3, 4);
  std::vector<const Vector*> borrowed;
  borrowed.reserve(costs.size());
  for (const Vector& c : costs) borrowed.push_back(&c);
  EXPECT_EQ(FastNonDominatedSort(borrowed), FastNonDominatedSort(costs));
  EXPECT_EQ(NonDominatedSortNaive(borrowed), NonDominatedSortNaive(costs));
}

TEST(FastNonDominatedSortTest, AllDuplicatesFormOneFront) {
  const std::vector<Vector> costs(9, Vector{2.0, 2.0, 2.0});
  const auto fronts = FastNonDominatedSort(costs);
  ASSERT_EQ(fronts.size(), 1u);
  std::vector<size_t> all(costs.size());
  std::iota(all.begin(), all.end(), size_t{0});
  EXPECT_EQ(fronts[0], all);
}

TEST(ParetoFrontTest, FastPathsMatchDefinitionRandomized) {
  // Exercises the 2-objective lex sweep, the 3-objective Kung recursion,
  // and the >= 4 objective parallel scan against the brute-force scan.
  Rng rng(31);
  for (size_t n : kSweepSizes) {
    for (size_t arity = 1; arity <= 5; ++arity) {
      for (int64_t grid : {int64_t{2}, int64_t{6}}) {
        const std::vector<Vector> costs = RandomCosts(&rng, n, arity, grid);
        const std::vector<size_t> expected = FrontByDefinition(costs);
        for (size_t threads : {size_t{1}, size_t{3}}) {
          EXPECT_EQ(ParetoFrontIndices(costs, threads), expected)
              << "n=" << n << " arity=" << arity << " grid=" << grid
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(CrowdingDistanceTest, BoundaryPointsAreInfinite) {
  const std::vector<Vector> costs = {{1, 4}, {2, 3}, {3, 2}, {4, 1}};
  const std::vector<size_t> front = {0, 1, 2, 3};
  const auto d = CrowdingDistances(costs, front);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[3]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_FALSE(std::isinf(d[2]));
}

TEST(CrowdingDistanceTest, DenserPointsGetSmallerDistance) {
  // Point 1 is crowded between 0 and 2; point 3 is isolated-ish.
  const std::vector<Vector> costs = {{0, 10}, {1, 9}, {2, 8}, {10, 0}};
  const std::vector<size_t> front = {0, 1, 2, 3};
  const auto d = CrowdingDistances(costs, front);
  EXPECT_LT(d[1], d[2]);
}

TEST(CrowdingDistanceTest, EmptyFront) {
  EXPECT_TRUE(CrowdingDistances(std::vector<Vector>{}, {}).empty());
}

// --- Parametric definitions (Eqs. 2-4) over a sampled parameter space ---

ParametricCost LinearPlan(double slope, double intercept) {
  return [slope, intercept](const Vector& x) -> Vector {
    return {slope * x[0] + intercept, intercept};
  };
}

TEST(DomRegionTest, FindsWhereOneplanWins) {
  // p1 = x, p2 = 2 - x on metric 0 (metric 1 ties): p1 wins for x <= 1.
  auto p1 = LinearPlan(1.0, 0.0);
  auto p2 = [](const Vector& x) -> Vector { return {2.0 - x[0], 0.0}; };
  std::vector<Vector> samples;
  for (double x = 0.0; x <= 2.0; x += 0.5) samples.push_back({x});
  auto region = DomRegion(p1, p2, samples);
  ASSERT_TRUE(region.ok());
  // x in {0, 0.5, 1.0} -> indices 0, 1, 2.
  EXPECT_EQ(*region, (std::vector<size_t>{0, 1, 2}));
}

TEST(StriDomRegionTest, ExcludesTies) {
  auto p1 = [](const Vector&) -> Vector { return {1.0, 1.0}; };
  auto p2 = [](const Vector& x) -> Vector {
    return {x[0], 2.0};  // metric 0 ties p1 at x = 1
  };
  std::vector<Vector> samples = {{0.5}, {1.0}, {2.0}};
  auto region = StriDomRegion(p2, p1, samples);
  ASSERT_TRUE(region.ok());
  // p2 strictly dominates p1 only where x < 1 on metric 0? metric 1 is
  // worse everywhere (2 > 1), so never.
  EXPECT_TRUE(region->empty());
}

TEST(ParetoRegionTest, PlanKeepsRegionWhereUnbeaten) {
  // plan: cost {x, 1-x}; rival: {0.5, 0.5}. Rival strictly dominates plan
  // where x > 0.5 and 1-x > 0.5 — impossible simultaneously, so the plan's
  // Pareto region is the whole space.
  auto plan = [](const Vector& x) -> Vector { return {x[0], 1.0 - x[0]}; };
  auto rival = [](const Vector&) -> Vector { return {0.5, 0.5}; };
  std::vector<Vector> samples = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  auto region = ParetoRegion(plan, {rival}, samples);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->size(), samples.size());
}

TEST(ParetoRegionTest, DominatedEverywhereIsEmpty) {
  auto plan = [](const Vector&) -> Vector { return {2.0, 2.0}; };
  auto rival = [](const Vector&) -> Vector { return {1.0, 1.0}; };
  std::vector<Vector> samples = {{0.0}, {1.0}};
  auto region = ParetoRegion(plan, {rival}, samples);
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->empty());
}

TEST(ParametricTest, NullCostFunctionRejected) {
  std::vector<Vector> samples = {{0.0}};
  EXPECT_FALSE(DomRegion(nullptr, LinearPlan(1, 0), samples).ok());
  EXPECT_FALSE(StriDomRegion(LinearPlan(1, 0), nullptr, samples).ok());
  EXPECT_FALSE(ParetoRegion(nullptr, {}, samples).ok());
  EXPECT_FALSE(ParetoRegion(LinearPlan(1, 0), {nullptr}, samples).ok());
}

}  // namespace
}  // namespace midas
