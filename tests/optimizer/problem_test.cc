#include "optimizer/problem.h"

#include <cmath>

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(Zdt1Test, KnownValues) {
  Zdt1 problem(3);
  EXPECT_EQ(problem.num_variables(), 3u);
  EXPECT_EQ(problem.num_objectives(), 2u);
  // On the Pareto-optimal manifold (x_i = 0 for i > 0): f2 = 1 - sqrt(f1).
  const Vector f = problem.Evaluate({0.25, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_NEAR(f[1], 1.0 - std::sqrt(0.25), 1e-12);
}

TEST(Zdt1Test, GPenaltyRaisesSecondObjective) {
  Zdt1 problem(3);
  const Vector optimal = problem.Evaluate({0.5, 0.0, 0.0});
  const Vector penalised = problem.Evaluate({0.5, 0.9, 0.9});
  EXPECT_GT(penalised[1], optimal[1]);
}

TEST(Zdt2Test, NonConvexFront) {
  Zdt2 problem(2);
  const Vector f = problem.Evaluate({0.5, 0.0});
  EXPECT_NEAR(f[1], 1.0 - 0.25, 1e-12);  // 1 - f1^2
}

TEST(Zdt3Test, DisconnectedFrontDipsNegative) {
  Zdt3 problem(2);
  // Scan f1 for a point where the sine term pushes f2 below zero.
  bool found_negative = false;
  for (double x = 0.01; x < 1.0; x += 0.01) {
    if (problem.Evaluate({x, 0.0})[1] < 0.0) {
      found_negative = true;
      break;
    }
  }
  EXPECT_TRUE(found_negative);
}

TEST(SchafferTest, MinimaAtZeroAndTwo) {
  Schaffer problem;
  EXPECT_DOUBLE_EQ(problem.Evaluate({0.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(problem.Evaluate({2.0})[1], 0.0);
  // Between the minima both objectives are positive: the trade-off zone.
  const Vector mid = problem.Evaluate({1.0});
  EXPECT_GT(mid[0], 0.0);
  EXPECT_GT(mid[1], 0.0);
}

TEST(ClampToBoundsTest, ClampsEachVariable) {
  Schaffer problem;  // bounds [-3, 5]
  EXPECT_DOUBLE_EQ(problem.ClampToBounds({-10.0})[0], -3.0);
  EXPECT_DOUBLE_EQ(problem.ClampToBounds({10.0})[0], 5.0);
  EXPECT_DOUBLE_EQ(problem.ClampToBounds({1.0})[0], 1.0);
}

TEST(ProblemNamesTest, AreStable) {
  EXPECT_EQ(Zdt1().name(), "ZDT1");
  EXPECT_EQ(Zdt2().name(), "ZDT2");
  EXPECT_EQ(Zdt3().name(), "ZDT3");
  EXPECT_EQ(Schaffer().name(), "Schaffer");
}

}  // namespace
}  // namespace midas
