#include <gtest/gtest.h>

#include "optimizer/best_in_pareto.h"

namespace midas {
namespace {

// A convex front with a pronounced knee at (2, 2).
const std::vector<Vector> kKneeFront = {
    {1.0, 10.0}, {1.2, 7.0}, {2.0, 2.0}, {7.0, 1.2}, {10.0, 1.0}};

TEST(KneePointTest, FindsTheKnee) {
  EXPECT_EQ(KneePointSelect(kKneeFront).ValueOrDie(), 2u);
}

TEST(KneePointTest, StraightLineFrontPicksAnyPointOnChord) {
  // On a perfectly linear front every point is on the chord; the extremes
  // tie at distance ~0 and the selection must still return a valid index.
  const std::vector<Vector> line = {{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}};
  auto pick = KneePointSelect(line);
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, line.size());
}

TEST(KneePointTest, TwoPlanFallback) {
  // Degenerate set: normalised-sum minimiser. Both normalise to (0,1) and
  // (1,0) — sums tie, first wins.
  auto pick = KneePointSelect({{1.0, 5.0}, {2.0, 1.0}});
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 0u);
}

TEST(KneePointTest, SinglePlan) {
  EXPECT_EQ(KneePointSelect({{3.0, 4.0}}).ValueOrDie(), 0u);
}

TEST(KneePointTest, IdenticalPlansHandled) {
  auto pick = KneePointSelect({{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(pick.ok());
  EXPECT_LT(*pick, 3u);
}

TEST(KneePointTest, RejectsEmptyAndNon2D) {
  EXPECT_FALSE(KneePointSelect({}).ok());
  EXPECT_FALSE(KneePointSelect({{1, 2, 3}}).ok());
}

TEST(KneePointTest, ScaleInvariant) {
  // Scaling one metric by 1000 must not move the knee (normalisation).
  std::vector<Vector> scaled = kKneeFront;
  for (Vector& c : scaled) c[1] *= 1000.0;
  EXPECT_EQ(KneePointSelect(scaled).ValueOrDie(),
            KneePointSelect(kKneeFront).ValueOrDie());
}

TEST(LexicographicTest, PrimaryMetricWinsOutright) {
  // Strict priority on metric 0 with zero tolerance.
  auto pick = LexicographicSelect(kKneeFront, {0}, 0.0);
  EXPECT_EQ(*pick, 0u);
}

TEST(LexicographicTest, ToleranceEnablesTieBreaking) {
  // Within 25% of the best time (1.0 -> cutoff 1.25), plans 0 and 1
  // survive; the cheaper of them is plan 1.
  auto pick = LexicographicSelect(kKneeFront, {0, 1}, 0.25);
  EXPECT_EQ(*pick, 1u);
}

TEST(LexicographicTest, ReversedPriority) {
  auto pick = LexicographicSelect(kKneeFront, {1, 0}, 0.25);
  EXPECT_EQ(*pick, 3u);  // within 25% of best money, faster one
}

TEST(LexicographicTest, ZeroToleranceIsStrict) {
  EXPECT_EQ(LexicographicSelect(kKneeFront, {1}, 0.0).ValueOrDie(), 4u);
}

TEST(LexicographicTest, RejectsBadInputs) {
  EXPECT_FALSE(LexicographicSelect({}, {0}).ok());
  EXPECT_FALSE(LexicographicSelect(kKneeFront, {}).ok());
  EXPECT_FALSE(LexicographicSelect(kKneeFront, {5}).ok());
  EXPECT_FALSE(LexicographicSelect(kKneeFront, {0}, -0.1).ok());
}

TEST(LexicographicTest, SurvivorAlwaysParetoMember) {
  for (double tol : {0.0, 0.1, 0.5, 2.0}) {
    auto pick = LexicographicSelect(kKneeFront, {0, 1}, tol);
    ASSERT_TRUE(pick.ok());
    EXPECT_LT(*pick, kKneeFront.size());
  }
}

}  // namespace
}  // namespace midas
