#include "optimizer/spea2.h"

#include <cmath>

#include <gtest/gtest.h>

#include "optimizer/metrics.h"
#include "optimizer/pareto.h"

namespace midas {
namespace {

Spea2Options SmallRun(uint64_t seed = 1) {
  Spea2Options options;
  options.population_size = 50;
  options.archive_size = 50;
  options.generations = 50;
  options.seed = seed;
  return options;
}

TEST(Spea2Test, SolvesSchaffer) {
  Spea2 spea2(SmallRun());
  auto result = spea2.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->front.empty());
  for (const Vector& x : result->FrontVariables()) {
    EXPECT_GT(x[0], -0.3);
    EXPECT_LT(x[0], 2.3);
  }
}

TEST(Spea2Test, Zdt1FrontCloseToTruth) {
  Spea2Options options;
  options.population_size = 80;
  options.archive_size = 80;
  options.generations = 120;
  Spea2 spea2(options);
  auto result = spea2.Optimize(Zdt1(10));
  ASSERT_TRUE(result.ok());
  const auto front = result->FrontObjectives();
  ASSERT_GE(front.size(), 10u);
  double total_gap = 0.0;
  for (const Vector& f : front) {
    total_gap += std::abs(f[1] - (1.0 - std::sqrt(f[0])));
  }
  EXPECT_LT(total_gap / static_cast<double>(front.size()), 0.15);
}

TEST(Spea2Test, ArchiveBoundedBySize) {
  Spea2Options options = SmallRun();
  options.archive_size = 20;
  Spea2 spea2(options);
  auto result = spea2.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->population.size(), 20u);
}

TEST(Spea2Test, FrontIsMutuallyNonDominated) {
  Spea2 spea2(SmallRun(3));
  auto result = spea2.Optimize(Schaffer());
  ASSERT_TRUE(result.ok());
  const auto front = result->FrontObjectives();
  for (size_t i = 0; i < front.size(); ++i) {
    for (size_t j = 0; j < front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Dominates(front[i], front[j]));
      }
    }
  }
}

TEST(Spea2Test, DeterministicGivenSeed) {
  auto r1 = Spea2(SmallRun(42)).Optimize(Schaffer());
  auto r2 = Spea2(SmallRun(42)).Optimize(Schaffer());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->FrontObjectives(), r2->FrontObjectives());
}

TEST(Spea2Test, HypervolumeComparableToNsga2) {
  Spea2Options spea_options;
  spea_options.population_size = 80;
  spea_options.archive_size = 80;
  spea_options.generations = 100;
  Nsga2Options nsga_options;
  nsga_options.population_size = 80;
  nsga_options.generations = 100;
  auto spea = Spea2(spea_options).Optimize(Zdt1(8));
  auto nsga = Nsga2(nsga_options).Optimize(Zdt1(8));
  ASSERT_TRUE(spea.ok());
  ASSERT_TRUE(nsga.ok());
  const Vector reference = {1.1, 1.1};
  const double hv_spea =
      Hypervolume2D(spea->FrontObjectives(), reference).ValueOrDie();
  const double hv_nsga =
      Hypervolume2D(nsga->FrontObjectives(), reference).ValueOrDie();
  EXPECT_GT(hv_spea, hv_nsga * 0.85);
}

TEST(Spea2Test, RejectsTinySizes) {
  Spea2Options options;
  options.population_size = 2;
  EXPECT_FALSE(Spea2(options).Optimize(Schaffer()).ok());
  options = SmallRun();
  options.archive_size = 2;
  EXPECT_FALSE(Spea2(options).Optimize(Schaffer()).ok());
}

}  // namespace
}  // namespace midas
