#include "optimizer/wsm.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(WeightedSumTest, ComputesDotProduct) {
  EXPECT_DOUBLE_EQ(WeightedSum({2, 4}, {0.5, 0.25}).ValueOrDie(), 2.0);
}

TEST(WeightedSumTest, RejectsArityMismatch) {
  EXPECT_FALSE(WeightedSum({1, 2}, {1}).ok());
}

TEST(WeightedSumTest, RejectsNegativeWeights) {
  EXPECT_FALSE(WeightedSum({1, 2}, {-1, 2}).ok());
}

TEST(WeightedSumTest, RejectsAllZeroWeights) {
  EXPECT_FALSE(WeightedSum({1, 2}, {0, 0}).ok());
}

TEST(WsmSelectTest, PicksDominantCandidate) {
  const std::vector<Vector> costs = {{10, 10}, {1, 1}, {5, 5}};
  EXPECT_EQ(WsmSelect(costs, {0.5, 0.5}).ValueOrDie(), 1u);
}

TEST(WsmSelectTest, WeightsSteerTheChoice) {
  // Candidate 0 is fast but expensive; candidate 1 cheap but slow.
  const std::vector<Vector> costs = {{1.0, 100.0}, {100.0, 1.0}};
  EXPECT_EQ(WsmSelect(costs, {1.0, 0.0}).ValueOrDie(), 0u);
  EXPECT_EQ(WsmSelect(costs, {0.0, 1.0}).ValueOrDie(), 1u);
}

TEST(WsmSelectTest, NormalisationMakesMetricsComparable) {
  // Metric 1 has a huge absolute scale; normalisation must stop it from
  // drowning metric 0 under equal weights.
  const std::vector<Vector> costs = {{1.0, 2e6}, {2.0, 1e6}};
  // After min-max normalisation: {0, 1} vs {1, 0} — tie broken by order;
  // with weights favouring metric 0 slightly, candidate 0 wins.
  EXPECT_EQ(WsmSelect(costs, {0.6, 0.4}).ValueOrDie(), 0u);
}

TEST(WsmSelectTest, ZeroRangeMetricIgnored) {
  const std::vector<Vector> costs = {{5.0, 7.0}, {3.0, 7.0}};
  EXPECT_EQ(WsmSelect(costs, {0.5, 0.5}).ValueOrDie(), 1u);
}

TEST(WsmSelectTest, RejectsEmptyAndRagged) {
  EXPECT_FALSE(WsmSelect({}, {1.0}).ok());
  EXPECT_FALSE(WsmSelect({{1, 2}, {1}}, {0.5, 0.5}).ok());
  EXPECT_FALSE(WsmSelect({{1, 2}}, {0.5}).ok());
}

TEST(WsmGeneticOptimizerTest, FindsWeightedOptimumOnSchaffer) {
  // min 0.5 x² + 0.5 (x-2)² has optimum at x = 1.
  WsmGaOptions options;
  options.population_size = 60;
  options.generations = 60;
  WsmGeneticOptimizer optimizer(options);
  auto result = optimizer.Optimize(Schaffer(), {0.5, 0.5});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->variables[0], 1.0, 0.1);
}

TEST(WsmGeneticOptimizerTest, ExtremeWeightsReachEndpoints) {
  WsmGaOptions options;
  options.population_size = 60;
  options.generations = 60;
  WsmGeneticOptimizer optimizer(options);
  auto fast = optimizer.Optimize(Schaffer(), {1.0, 0.0});
  ASSERT_TRUE(fast.ok());
  EXPECT_NEAR(fast->variables[0], 0.0, 0.1);
  auto cheap = optimizer.Optimize(Schaffer(), {0.0, 1.0});
  ASSERT_TRUE(cheap.ok());
  EXPECT_NEAR(cheap->variables[0], 2.0, 0.1);
}

TEST(WsmGeneticOptimizerTest, MissesNonConvexFrontInterior) {
  // §2.6: on the non-convex ZDT2 front the weighted-sum optimum always sits
  // at an extreme, never strictly inside — the motivation for Pareto
  // methods. Sweep several weights and check no interior solution appears.
  WsmGaOptions options;
  options.population_size = 80;
  options.generations = 120;
  WsmGeneticOptimizer optimizer(options);
  for (double w : {0.2, 0.4, 0.6, 0.8}) {
    auto result = optimizer.Optimize(Zdt2(6), {w, 1.0 - w});
    ASSERT_TRUE(result.ok());
    const double f1 = result->objectives[0];
    EXPECT_TRUE(f1 < 0.15 || f1 > 0.85)
        << "weight " << w << " produced interior point f1=" << f1;
  }
}

TEST(WsmGeneticOptimizerTest, RejectsBadWeights) {
  WsmGeneticOptimizer optimizer;
  EXPECT_FALSE(optimizer.Optimize(Schaffer(), {1.0}).ok());
  EXPECT_FALSE(optimizer.Optimize(Schaffer(), {-1.0, 2.0}).ok());
}

TEST(WsmGeneticOptimizerTest, ScalarFitnessMatchesObjectives) {
  WsmGaOptions options;
  options.population_size = 30;
  options.generations = 20;
  WsmGeneticOptimizer optimizer(options);
  auto result = optimizer.Optimize(Schaffer(), {0.3, 0.7});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->scalar_fitness,
              0.3 * result->objectives[0] + 0.7 * result->objectives[1],
              1e-9);
}

}  // namespace
}  // namespace midas
