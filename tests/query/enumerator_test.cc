#include "query/enumerator.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace midas {
namespace {

struct Environment {
  Federation federation;
  Catalog catalog;
  SiteId site_a = 0;
  SiteId site_b = 0;
};

Environment MakeEnvironment() {
  Environment env;
  SiteConfig a;
  a.name = "A";
  a.engines = {EngineKind::kHive};
  a.node_type = {ProviderKind::kAmazon, "a1.large", 2, 4.0, 0.0, 0.0098};
  a.max_nodes = 8;
  env.site_a = env.federation.AddSite(a).ValueOrDie();
  SiteConfig b;
  b.name = "B";
  b.engines = {EngineKind::kPostgres};
  b.node_type = {ProviderKind::kMicrosoft, "B2S", 2, 4.0, 8.0, 0.042};
  b.max_nodes = 8;
  env.site_b = env.federation.AddSite(b).ValueOrDie();

  TableDef t1;
  t1.name = "t1";
  t1.row_count = 1000;
  t1.columns = {{"id", ColumnType::kInt, 8.0, 1000}};
  env.catalog.AddTable(t1).CheckOK();
  TableDef t2;
  t2.name = "t2";
  t2.row_count = 500;
  t2.columns = {{"id", ColumnType::kInt, 8.0, 500}};
  env.catalog.AddTable(t2).CheckOK();

  env.federation.PlaceTable("t1", env.site_a, EngineKind::kHive).CheckOK();
  env.federation.PlaceTable("t2", env.site_b, EngineKind::kPostgres)
      .CheckOK();
  return env;
}

QueryPlan JoinPlan() {
  return QueryPlan(MakeJoin(MakeScan("t1"), MakeScan("t2"), "id", "id"));
}

TEST(EnumeratorTest, ProducesAnnotatedPlans) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto plans = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  for (const QueryPlan& plan : *plans) {
    for (const PlanNode* node : plan.Nodes()) {
      EXPECT_TRUE(node->site.has_value());
      EXPECT_TRUE(node->engine.has_value());
      EXPECT_GT(node->num_nodes, 0);
      EXPECT_GT(node->output_rows, 0.0);  // cardinalities estimated
    }
  }
}

TEST(EnumeratorTest, ScansPinnedToPlacement) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto plans = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(plans.ok());
  for (const QueryPlan& plan : *plans) {
    for (const PlanNode* node : plan.Nodes()) {
      if (node->kind != OperatorKind::kScan) continue;
      if (node->table == "t1") {
        EXPECT_EQ(*node->site, env.site_a);
        EXPECT_EQ(*node->engine, EngineKind::kHive);
      } else {
        EXPECT_EQ(*node->site, env.site_b);
        EXPECT_EQ(*node->engine, EngineKind::kPostgres);
      }
    }
  }
}

TEST(EnumeratorTest, CoversBothComputeEngines) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto plans = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(plans.ok());
  std::set<EngineKind> join_engines;
  for (const QueryPlan& plan : *plans) {
    join_engines.insert(*plan.root()->engine);
  }
  EXPECT_EQ(join_engines.size(), 2u);
}

TEST(EnumeratorTest, CoversAllNodeCounts) {
  Environment env = MakeEnvironment();
  EnumeratorOptions options;
  options.node_counts = {1, 2, 4};
  PlanEnumerator enumerator(&env.federation, &env.catalog, options);
  auto plans = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(plans.ok());
  std::set<int> counts;
  for (const QueryPlan& plan : *plans) {
    counts.insert(plan.root()->num_nodes);
  }
  EXPECT_EQ(counts, (std::set<int>{1, 2, 4}));
}

TEST(EnumeratorTest, JoinOrderVariantsDoubleThePlans) {
  Environment env = MakeEnvironment();
  EnumeratorOptions with;
  with.enumerate_join_orders = true;
  EnumeratorOptions without;
  without.enumerate_join_orders = false;
  auto with_plans = PlanEnumerator(&env.federation, &env.catalog, with)
                        .EnumeratePhysical(JoinPlan());
  auto without_plans = PlanEnumerator(&env.federation, &env.catalog, without)
                           .EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(with_plans.ok());
  ASSERT_TRUE(without_plans.ok());
  EXPECT_EQ(with_plans->size(), 2 * without_plans->size());
}

TEST(EnumeratorTest, RespectsMaxPlansCap) {
  Environment env = MakeEnvironment();
  EnumeratorOptions options;
  options.max_plans = 5;
  PlanEnumerator enumerator(&env.federation, &env.catalog, options);
  auto plans = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 5u);
}

TEST(EnumeratorTest, RespectsSiteElasticityLimit) {
  Environment env = MakeEnvironment();
  EnumeratorOptions options;
  options.node_counts = {1, 16};  // 16 exceeds both sites' max of 8
  PlanEnumerator enumerator(&env.federation, &env.catalog, options);
  auto plans = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(plans.ok());
  for (const QueryPlan& plan : *plans) {
    for (const PlanNode* node : plan.Nodes()) {
      EXPECT_LE(node->num_nodes, 8);
    }
  }
}

TEST(EnumeratorTest, UnplacedTableFails) {
  Environment env = MakeEnvironment();
  TableDef t3;
  t3.name = "t3";
  t3.row_count = 10;
  t3.columns = {{"id", ColumnType::kInt, 8.0, 10}};
  env.catalog.AddTable(t3).CheckOK();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  EXPECT_FALSE(
      enumerator.EnumeratePhysical(QueryPlan(MakeScan("t3"))).ok());
}

TEST(EnumeratorTest, EmptyNodeCountsRejected) {
  Environment env = MakeEnvironment();
  EnumeratorOptions options;
  options.node_counts = {};
  PlanEnumerator enumerator(&env.federation, &env.catalog, options);
  EXPECT_FALSE(enumerator.EnumeratePhysical(JoinPlan()).ok());
}

std::vector<std::string> PlanStrings(const std::vector<QueryPlan>& plans) {
  std::vector<std::string> out;
  out.reserve(plans.size());
  for (const QueryPlan& plan : plans) out.push_back(plan.ToString());
  return out;
}

TEST(EnumeratorTest, ChunkedMatchesMaterializedAtAnyChunkSize) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto all = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(all.ok());
  const std::vector<std::string> want = PlanStrings(*all);
  ASSERT_FALSE(want.empty());

  for (size_t chunk_size :
       {size_t{1}, size_t{3}, size_t{64}, size_t{1000000}}) {
    std::vector<std::string> got;
    size_t chunks = 0;
    auto status = enumerator.EnumerateChunked(
        JoinPlan(), chunk_size,
        [&](std::vector<QueryPlan>&& chunk) -> Status {
          EXPECT_FALSE(chunk.empty());
          EXPECT_LE(chunk.size(), chunk_size);
          ++chunks;
          for (QueryPlan& plan : chunk) got.push_back(plan.ToString());
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << "chunk_size=" << chunk_size;
    EXPECT_EQ(got, want) << "chunk_size=" << chunk_size;
    EXPECT_EQ(chunks, (want.size() + chunk_size - 1) / chunk_size)
        << "chunk_size=" << chunk_size;
  }
}

TEST(EnumeratorTest, ChunkedVisitorErrorAbortsEnumeration) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  size_t calls = 0;
  auto status = enumerator.EnumerateChunked(
      JoinPlan(), 4, [&](std::vector<QueryPlan>&&) -> Status {
        ++calls;
        return Status::Internal("stop here");
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "stop here");
  EXPECT_EQ(calls, 1u);
}

TEST(EnumeratorTest, ChunkedRespectsMaxPlansCap) {
  Environment env = MakeEnvironment();
  EnumeratorOptions options;
  options.max_plans = 5;
  PlanEnumerator enumerator(&env.federation, &env.catalog, options);
  size_t total = 0;
  ASSERT_TRUE(enumerator
                  .EnumerateChunked(JoinPlan(), 2,
                                    [&](std::vector<QueryPlan>&& chunk) {
                                      total += chunk.size();
                                      return Status::OK();
                                    })
                  .ok());
  EXPECT_EQ(total, 5u);
}

TEST(EnumeratorTest, ChunkedRejectsBadArguments) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto noop = [](std::vector<QueryPlan>&&) { return Status::OK(); };
  EXPECT_FALSE(enumerator.EnumerateChunked(JoinPlan(), 0, noop).ok());
  EXPECT_FALSE(enumerator
                   .EnumerateChunked(JoinPlan(), 4,
                                     PlanEnumerator::ChunkVisitor())
                   .ok());
}

TEST(EnumeratorTest, ChunkedReportsNoFeasiblePlan) {
  Environment env = MakeEnvironment();
  EnumeratorOptions options;
  options.node_counts = {16};  // exceeds both sites' max of 8
  PlanEnumerator enumerator(&env.federation, &env.catalog, options);
  size_t calls = 0;
  auto status = enumerator.EnumerateChunked(
      JoinPlan(), 4, [&](std::vector<QueryPlan>&&) {
        ++calls;
        return Status::OK();
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 0u);
}

// Runs every shard and returns plan strings indexed by global sequence
// number, verifying chunk/seq alignment along the way.
std::vector<std::string> CollectSharded(
    const PlanEnumerator& enumerator, const QueryPlan& logical,
    const std::vector<EnumerationShard>& shards, size_t total,
    size_t chunk_size) {
  std::vector<std::string> by_seq(total);
  std::vector<char> seen(total, 0);
  for (const EnumerationShard& shard : shards) {
    uint64_t emitted = 0;
    auto status = enumerator.EnumerateShardChunked(
        logical, shard, chunk_size,
        [&](std::vector<QueryPlan>&& chunk,
            std::vector<uint64_t>&& seqs) -> Status {
          EXPECT_FALSE(chunk.empty());
          EXPECT_LE(chunk.size(), chunk_size);
          EXPECT_EQ(chunk.size(), seqs.size());
          for (size_t i = 0; i < chunk.size(); ++i) {
            EXPECT_LT(seqs[i], total);
            EXPECT_EQ(seen[seqs[i]], 0) << "duplicate seq " << seqs[i];
            seen[seqs[i]] = 1;
            by_seq[seqs[i]] = chunk[i].ToString();
          }
          emitted += chunk.size();
          return Status::OK();
        });
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(emitted, shard.planned_emissions);
  }
  for (char s : seen) EXPECT_EQ(s, 1);  // shards cover the space exactly
  return by_seq;
}

TEST(EnumeratorTest, ShardsReassembleSerialEnumerationExactly) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto all = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(all.ok());
  const std::vector<std::string> want = PlanStrings(*all);
  ASSERT_FALSE(want.empty());

  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
    auto shards = enumerator.PartitionShards(JoinPlan(), num_shards);
    ASSERT_TRUE(shards.ok()) << "shards=" << num_shards;
    ASSERT_EQ(shards->size(), num_shards);
    uint64_t planned = 0;
    for (const EnumerationShard& shard : *shards) {
      planned += shard.planned_emissions;
      // Strata ascend by index and planned_emissions is their sum.
      uint64_t from_strata = 0;
      for (size_t i = 0; i < shard.strata.size(); ++i) {
        from_strata += shard.strata[i].feasible;
        if (i > 0) {
          EXPECT_LT(shard.strata[i - 1].index, shard.strata[i].index);
        }
      }
      EXPECT_EQ(from_strata, shard.planned_emissions);
    }
    EXPECT_EQ(planned, want.size()) << "shards=" << num_shards;
    const std::vector<std::string> got = CollectSharded(
        enumerator, JoinPlan(), *shards, want.size(), /*chunk_size=*/3);
    EXPECT_EQ(got, want) << "shards=" << num_shards;
  }
}

TEST(EnumeratorTest, ShardsRespectMaxPlansCap) {
  Environment env = MakeEnvironment();
  EnumeratorOptions options;
  options.max_plans = 5;
  PlanEnumerator enumerator(&env.federation, &env.catalog, options);
  auto capped = enumerator.EnumeratePhysical(JoinPlan());
  ASSERT_TRUE(capped.ok());
  ASSERT_EQ(capped->size(), 5u);

  auto shards = enumerator.PartitionShards(JoinPlan(), 3);
  ASSERT_TRUE(shards.ok());
  uint64_t planned = 0;
  for (const EnumerationShard& shard : *shards) {
    planned += shard.planned_emissions;
  }
  EXPECT_EQ(planned, 5u);
  // The union of the shards is exactly the first max_plans serial plans.
  const std::vector<std::string> got =
      CollectSharded(enumerator, JoinPlan(), *shards, 5, /*chunk_size=*/2);
  EXPECT_EQ(got, PlanStrings(*capped));
}

TEST(EnumeratorTest, PartitionShardsBalancesAndIsDeterministic) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto first = enumerator.PartitionShards(JoinPlan(), 4);
  auto second = enumerator.PartitionShards(JoinPlan(), 4);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t s = 0; s < first->size(); ++s) {
    EXPECT_EQ((*first)[s].planned_emissions, (*second)[s].planned_emissions);
    ASSERT_EQ((*first)[s].strata.size(), (*second)[s].strata.size());
    for (size_t i = 0; i < (*first)[s].strata.size(); ++i) {
      EXPECT_EQ((*first)[s].strata[i].index, (*second)[s].strata[i].index);
      EXPECT_EQ((*first)[s].strata[i].seq_base,
                (*second)[s].strata[i].seq_base);
    }
  }
  // No shard should carry everything when there are enough strata.
  uint64_t total = 0;
  uint64_t largest = 0;
  for (const EnumerationShard& shard : *first) {
    total += shard.planned_emissions;
    largest = std::max(largest, shard.planned_emissions);
  }
  EXPECT_LT(largest, total);
}

TEST(EnumeratorTest, PartitionShardsErrors) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  EXPECT_FALSE(enumerator.PartitionShards(JoinPlan(), 0).ok());

  EnumeratorOptions infeasible;
  infeasible.node_counts = {16};  // exceeds both sites' max of 8
  PlanEnumerator bad(&env.federation, &env.catalog, infeasible);
  auto shards = bad.PartitionShards(JoinPlan(), 2);
  EXPECT_FALSE(shards.ok());  // same "no feasible physical plan" as serial
}

TEST(EnumeratorTest, ShardChunkedRejectsBadArguments) {
  Environment env = MakeEnvironment();
  PlanEnumerator enumerator(&env.federation, &env.catalog);
  auto shards = enumerator.PartitionShards(JoinPlan(), 2);
  ASSERT_TRUE(shards.ok());
  auto noop = [](std::vector<QueryPlan>&&, std::vector<uint64_t>&&) {
    return Status::OK();
  };
  EXPECT_FALSE(
      enumerator.EnumerateShardChunked(JoinPlan(), (*shards)[0], 0, noop)
          .ok());
  EXPECT_FALSE(enumerator
                   .EnumerateShardChunked(JoinPlan(), (*shards)[0], 4,
                                          PlanEnumerator::SequencedChunkVisitor())
                   .ok());
  // An empty shard is fine: no chunks, no error.
  EnumerationShard empty;
  size_t calls = 0;
  EXPECT_TRUE(enumerator
                  .EnumerateShardChunked(
                      JoinPlan(), empty, 4,
                      [&](std::vector<QueryPlan>&&, std::vector<uint64_t>&&) {
                        ++calls;
                        return Status::OK();
                      })
                  .ok());
  EXPECT_EQ(calls, 0u);
}

TEST(EnumeratorTest, Example31ResourceConfigurations) {
  // 70 vCPU x 260 GiB = 18,200 equivalent configurations.
  EXPECT_EQ(PlanEnumerator::CountResourceConfigurations(70, 260), 18200u);
  EXPECT_EQ(PlanEnumerator::CountResourceConfigurations(0, 10), 0u);
  EXPECT_EQ(PlanEnumerator::CountResourceConfigurations(-1, 10), 0u);
}

}  // namespace
}  // namespace midas
