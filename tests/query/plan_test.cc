#include "query/plan.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  TableDef a;
  a.name = "a";
  a.row_count = 1000;
  a.columns = {{"id", ColumnType::kInt, 8.0, 1000},
               {"payload", ColumnType::kString, 92.0, 1000}};
  catalog.AddTable(a).CheckOK();
  TableDef b;
  b.name = "b";
  b.row_count = 100;
  b.columns = {{"id", ColumnType::kInt, 8.0, 100},
               {"tag", ColumnType::kString, 12.0, 10}};
  catalog.AddTable(b).CheckOK();
  return catalog;
}

QueryPlan JoinPlan() {
  return QueryPlan(
      MakeJoin(MakeScan("a"), MakeScan("b"), "id", "id"));
}

TEST(PlanTest, MakeScanShape) {
  auto scan = MakeScan("a");
  EXPECT_EQ(scan->kind, OperatorKind::kScan);
  EXPECT_EQ(scan->table, "a");
  EXPECT_TRUE(scan->children.empty());
}

TEST(PlanTest, NodesPreOrder) {
  QueryPlan plan = JoinPlan();
  auto nodes = plan.Nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0]->kind, OperatorKind::kJoin);
  EXPECT_EQ(nodes[1]->table, "a");
  EXPECT_EQ(nodes[2]->table, "b");
}

TEST(PlanTest, BaseTables) {
  QueryPlan plan = JoinPlan();
  auto tables = plan.BaseTables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], "a");
  EXPECT_EQ(tables[1], "b");
}

TEST(PlanTest, CopyIsDeep) {
  QueryPlan plan = JoinPlan();
  QueryPlan copy = plan;
  copy.MutableNodes()[1]->table = "changed";
  EXPECT_EQ(plan.Nodes()[1]->table, "a");
}

TEST(PlanTest, ValidateAcceptsWellFormedPlan) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan = JoinPlan();
  EXPECT_TRUE(plan.Validate(catalog).ok());
}

TEST(PlanTest, ValidateRejectsUnknownTable) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan(MakeScan("nope"));
  EXPECT_FALSE(plan.Validate(catalog).ok());
}

TEST(PlanTest, ValidateRejectsEmptyPlan) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan;
  EXPECT_FALSE(plan.Validate(catalog).ok());
}

TEST(PlanTest, ValidateRejectsJoinWithoutColumns) {
  Catalog catalog = MakeCatalog();
  auto join = MakeJoin(MakeScan("a"), MakeScan("b"), "", "");
  QueryPlan plan(std::move(join));
  EXPECT_FALSE(plan.Validate(catalog).ok());
}

TEST(PlanTest, ValidateRejectsZeroNodeAnnotation) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan = JoinPlan();
  plan.MutableNodes()[0]->num_nodes = 0;
  EXPECT_FALSE(plan.Validate(catalog).ok());
}

TEST(PlanTest, CombineJoinsTwoPlans) {
  auto combined = Combine(QueryPlan(MakeScan("a")), QueryPlan(MakeScan("b")),
                          OperatorKind::kJoin, "id", "id");
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->root()->kind, OperatorKind::kJoin);
  EXPECT_EQ(combined->BaseTables().size(), 2u);
}

TEST(PlanTest, CombineRejectsUnaryOperator) {
  auto combined = Combine(QueryPlan(MakeScan("a")), QueryPlan(MakeScan("b")),
                          OperatorKind::kFilter, "id", "id");
  EXPECT_FALSE(combined.ok());
}

TEST(PlanTest, CombineRejectsEmptyPlan) {
  auto combined = Combine(QueryPlan(), QueryPlan(MakeScan("b")),
                          OperatorKind::kJoin, "id", "id");
  EXPECT_FALSE(combined.ok());
}

TEST(CardinalityTest, ScanUsesTableRowCount) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan(MakeScan("a"));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 1000.0);
  EXPECT_DOUBLE_EQ(plan.root()->output_bytes, 1000.0 * 100.0);
}

TEST(CardinalityTest, ScanFractionPrunes) {
  Catalog catalog = MakeCatalog();
  auto scan = MakeScan("a");
  scan->scan_fraction = 0.25;
  QueryPlan plan(std::move(scan));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 250.0);
}

TEST(CardinalityTest, BadScanFractionRejected) {
  Catalog catalog = MakeCatalog();
  auto scan = MakeScan("a");
  scan->scan_fraction = 0.0;
  QueryPlan plan(std::move(scan));
  EXPECT_FALSE(EstimateCardinalities(catalog, &plan).ok());
}

TEST(CardinalityTest, FilterAppliesSelectivity) {
  Catalog catalog = MakeCatalog();
  Predicate p{"tag", CompareOp::kEq, std::nullopt};  // NDV 10 -> 0.1
  QueryPlan plan(MakeFilter(MakeScan("b"), {p}));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 10.0);
}

TEST(CardinalityTest, FilterOverrideSelectivity) {
  Catalog catalog = MakeCatalog();
  Predicate p{"tag", CompareOp::kEq, 0.5};
  QueryPlan plan(MakeFilter(MakeScan("b"), {p}));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 50.0);
}

TEST(CardinalityTest, JoinUsesOneOverMaxNdv) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan = JoinPlan();
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  // |a| * |b| / max(ndv_a.id, ndv_b.id) = 1000 * 100 / 1000 = 100.
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 100.0);
}

TEST(CardinalityTest, JoinSelectivityOverride) {
  Catalog catalog = MakeCatalog();
  auto join = MakeJoin(MakeScan("a"), MakeScan("b"), "id", "id");
  join->join_selectivity_override = 0.01;
  QueryPlan plan(std::move(join));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 1000.0);
}

TEST(CardinalityTest, ProjectNarrowsWidth) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan(MakeProject(MakeScan("a"), {"id"}));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 1000.0);
  EXPECT_DOUBLE_EQ(plan.root()->output_bytes, 1000.0 * 8.0);
}

TEST(CardinalityTest, ProjectUnknownColumnFails) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan(MakeProject(MakeScan("a"), {"ghost"}));
  EXPECT_FALSE(EstimateCardinalities(catalog, &plan).ok());
}

TEST(CardinalityTest, AggregateCapsAtGroups) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan(MakeAggregate(MakeScan("a"), 7));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 7.0);
}

TEST(CardinalityTest, AggregateCappedByInputRows) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan(MakeAggregate(MakeScan("b"), 1000000));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 100.0);
}

TEST(CardinalityTest, SortPreservesCardinality) {
  Catalog catalog = MakeCatalog();
  QueryPlan plan(MakeSort(MakeScan("b")));
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan).ok());
  EXPECT_DOUBLE_EQ(plan.root()->output_rows, 100.0);
}

TEST(PlanToStringTest, RendersOperatorsAndAnnotations) {
  QueryPlan plan = JoinPlan();
  plan.MutableNodes()[0]->site = 0;
  plan.MutableNodes()[0]->engine = EngineKind::kHive;
  plan.MutableNodes()[0]->num_nodes = 4;
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("Join"), std::string::npos);
  EXPECT_NE(s.find("Scan(a)"), std::string::npos);
  EXPECT_NE(s.find("@Hive"), std::string::npos);
  EXPECT_NE(s.find("x4"), std::string::npos);
}

TEST(OperatorKindTest, Names) {
  EXPECT_EQ(OperatorKindName(OperatorKind::kScan), "Scan");
  EXPECT_EQ(OperatorKindName(OperatorKind::kJoin), "Join");
  EXPECT_EQ(OperatorKindName(OperatorKind::kAggregate), "Aggregate");
}

}  // namespace
}  // namespace midas
