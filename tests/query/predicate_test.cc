#include "query/predicate.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TableDef MakeTable() {
  TableDef t;
  t.name = "t";
  t.row_count = 1000;
  t.columns = {{"status", ColumnType::kString, 1.0, 4},
               {"amount", ColumnType::kDouble, 8.0, 500}};
  return t;
}

TEST(SelectivityTest, EqualityUsesNdv) {
  Predicate p{"status", CompareOp::kEq, std::nullopt};
  EXPECT_DOUBLE_EQ(EstimateSelectivity(MakeTable(), p).ValueOrDie(), 0.25);
}

TEST(SelectivityTest, InequalityIsComplement) {
  Predicate p{"status", CompareOp::kNe, std::nullopt};
  EXPECT_DOUBLE_EQ(EstimateSelectivity(MakeTable(), p).ValueOrDie(), 0.75);
}

TEST(SelectivityTest, RangeDefaultsToOneThird) {
  for (CompareOp op :
       {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    Predicate p{"amount", op, std::nullopt};
    EXPECT_NEAR(EstimateSelectivity(MakeTable(), p).ValueOrDie(), 1.0 / 3.0,
                1e-12);
  }
}

TEST(SelectivityTest, BetweenIsQuarter) {
  Predicate p{"amount", CompareOp::kBetween, std::nullopt};
  EXPECT_DOUBLE_EQ(EstimateSelectivity(MakeTable(), p).ValueOrDie(), 0.25);
}

TEST(SelectivityTest, LikeIsTenth) {
  Predicate p{"status", CompareOp::kLike, std::nullopt};
  EXPECT_DOUBLE_EQ(EstimateSelectivity(MakeTable(), p).ValueOrDie(), 0.1);
}

TEST(SelectivityTest, OverrideWins) {
  Predicate p{"status", CompareOp::kEq, 0.007};
  EXPECT_DOUBLE_EQ(EstimateSelectivity(MakeTable(), p).ValueOrDie(), 0.007);
}

TEST(SelectivityTest, OverrideOutsideUnitIntervalRejected) {
  Predicate p{"status", CompareOp::kEq, 1.5};
  EXPECT_FALSE(EstimateSelectivity(MakeTable(), p).ok());
  p.selectivity_override = -0.1;
  EXPECT_FALSE(EstimateSelectivity(MakeTable(), p).ok());
}

TEST(SelectivityTest, UnknownColumnFails) {
  Predicate p{"nope", CompareOp::kEq, std::nullopt};
  EXPECT_FALSE(EstimateSelectivity(MakeTable(), p).ok());
}

TEST(SelectivityTest, ConjunctionMultiplies) {
  std::vector<Predicate> ps = {{"status", CompareOp::kEq, std::nullopt},
                               {"amount", CompareOp::kLt, std::nullopt}};
  EXPECT_NEAR(
      EstimateConjunctionSelectivity(MakeTable(), ps).ValueOrDie(),
      0.25 / 3.0, 1e-12);
}

TEST(SelectivityTest, EmptyConjunctionIsOne) {
  EXPECT_DOUBLE_EQ(
      EstimateConjunctionSelectivity(MakeTable(), {}).ValueOrDie(), 1.0);
}

TEST(CompareOpTest, Names) {
  EXPECT_EQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_EQ(CompareOpName(CompareOp::kBetween), "BETWEEN");
  EXPECT_EQ(CompareOpName(CompareOp::kLike), "LIKE");
}

}  // namespace
}  // namespace midas
