#include "query/schema.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TableDef MakeTable() {
  TableDef t;
  t.name = "t";
  t.row_count = 100;
  t.columns = {{"id", ColumnType::kInt, 4.0, 100},
               {"name", ColumnType::kString, 20.0, 90}};
  return t;
}

TEST(TableDefTest, RowWidthSumsColumnWidths) {
  EXPECT_DOUBLE_EQ(MakeTable().RowWidthBytes(), 24.0);
}

TEST(TableDefTest, SizeBytesIsWidthTimesRows) {
  EXPECT_DOUBLE_EQ(MakeTable().SizeBytes(), 2400.0);
}

TEST(TableDefTest, FindColumn) {
  TableDef t = MakeTable();
  auto col = t.FindColumn("name");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->distinct_values, 90u);
  EXPECT_FALSE(t.FindColumn("missing").ok());
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable()).ok());
  EXPECT_TRUE(catalog.Contains("t"));
  EXPECT_FALSE(catalog.Contains("u"));
  auto t = catalog.Find("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row_count, 100u);
  EXPECT_FALSE(catalog.Find("u").ok());
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable()).ok());
  EXPECT_FALSE(catalog.AddTable(MakeTable()).ok());
}

TEST(CatalogTest, TotalBytesSumsTables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable()).ok());
  TableDef other = MakeTable();
  other.name = "u";
  other.row_count = 50;
  ASSERT_TRUE(catalog.AddTable(other).ok());
  EXPECT_DOUBLE_EQ(catalog.TotalBytes(), 2400.0 + 1200.0);
}

TEST(CatalogTest, EmptyCatalog) {
  Catalog catalog;
  EXPECT_DOUBLE_EQ(catalog.TotalBytes(), 0.0);
  EXPECT_TRUE(catalog.tables().empty());
}

}  // namespace
}  // namespace midas
