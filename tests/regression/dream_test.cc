#include "regression/dream.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "support/simd_testing.h"

namespace midas {
namespace {

// History with a clean linear relationship: c0 = 1 + 2 x1 + 3 x2,
// c1 = 10 - x1.
TrainingSet LinearHistory(size_t n, double noise_sigma = 0.0,
                          uint64_t seed = 9) {
  TrainingSet set({"x1", "x2"}, {"time", "money"});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x1 = rng.Uniform(0, 5);
    const double x2 = rng.Uniform(0, 5);
    const double e0 = noise_sigma > 0 ? rng.Gaussian(0, noise_sigma) : 0.0;
    const double e1 = noise_sigma > 0 ? rng.Gaussian(0, noise_sigma) : 0.0;
    set.Add({x1, x2}, {1 + 2 * x1 + 3 * x2 + e0, 10 - x1 + e1}).CheckOK();
  }
  return set;
}

TEST(DreamTest, StopsAtMinimumWindowOnCleanData) {
  TrainingSet history = LinearHistory(50);
  Dream dream;
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  // L = 2 -> minimum window is 4; a perfect fit converges immediately.
  EXPECT_EQ(est->window_size, 4u);
  EXPECT_TRUE(est->converged);
  ASSERT_EQ(est->r_squared.size(), 2u);
  EXPECT_GE(est->r_squared[0], 0.8);
  EXPECT_GE(est->r_squared[1], 0.8);
}

TEST(DreamTest, PredictsBothMetrics) {
  TrainingSet history = LinearHistory(30);
  Dream dream;
  auto costs = dream.PredictCosts(history, {1.0, 1.0});
  ASSERT_TRUE(costs.ok());
  ASSERT_EQ(costs->size(), 2u);
  EXPECT_NEAR((*costs)[0], 6.0, 1e-6);
  EXPECT_NEAR((*costs)[1], 9.0, 1e-6);
}

TEST(DreamTest, RequiresAtLeastLPlusTwoObservations) {
  TrainingSet history = LinearHistory(3);  // < 4
  Dream dream;
  EXPECT_FALSE(dream.EstimateCostValue(history).ok());
}

TEST(DreamTest, ExactlyMinimumHistoryWorks) {
  TrainingSet history = LinearHistory(4);
  Dream dream;
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->window_size, 4u);
}

TEST(DreamTest, GrowsWindowWhenNoisy) {
  // Heavy noise keeps R² below the requirement at the minimum window.
  TrainingSet history = LinearHistory(60, /*noise_sigma=*/6.0);
  DreamOptions options;
  options.r2_require = 0.9;
  Dream dream(options);
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->window_size, 4u);
}

TEST(DreamTest, HonorsMmaxCap) {
  TrainingSet history = LinearHistory(60, /*noise_sigma=*/50.0);
  DreamOptions options;
  options.r2_require = 0.999;  // unreachable
  options.m_max = 10;
  Dream dream(options);
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->window_size, 10u);
  EXPECT_FALSE(est->converged);
}

TEST(DreamTest, MmaxZeroMeansAllHistory) {
  TrainingSet history = LinearHistory(20, /*noise_sigma=*/50.0);
  DreamOptions options;
  options.r2_require = 0.9999;  // unreachable
  options.m_max = 0;
  Dream dream(options);
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->window_size, 20u);
}

TEST(DreamTest, UsesNewestObservations) {
  // Old regime c = x1; new regime c = 100 + x1. A fresh window must track
  // the new regime.
  TrainingSet set({"x1"}, {"c"});
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.Uniform(0, 10);
    set.Add({x}, {x}).CheckOK();
  }
  for (int i = 0; i < 10; ++i) {
    const double x = rng.Uniform(0, 10);
    set.Add({x}, {100.0 + x}).CheckOK();
  }
  Dream dream;
  auto costs = dream.PredictCosts(set, {5.0});
  ASSERT_TRUE(costs.ok());
  EXPECT_NEAR((*costs)[0], 105.0, 1.0);
}

TEST(DreamTest, AdjustedR2ModeGrowsFurther) {
  TrainingSet history = LinearHistory(60, /*noise_sigma=*/2.0, 17);
  DreamOptions plain;
  plain.use_adjusted_r2 = false;
  DreamOptions adjusted;
  adjusted.use_adjusted_r2 = true;
  auto est_plain = Dream(plain).EstimateCostValue(history);
  auto est_adj = Dream(adjusted).EstimateCostValue(history);
  ASSERT_TRUE(est_plain.ok());
  ASSERT_TRUE(est_adj.ok());
  EXPECT_GE(est_adj->window_size, est_plain->window_size);
}

TEST(DreamTest, ReducedTrainingSetMatchesWindow) {
  TrainingSet history = LinearHistory(30);
  Dream dream;
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  auto reduced = dream.MakeReducedTrainingSet(history);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->size(), est->window_size);
  // Newest observation must be preserved verbatim.
  EXPECT_EQ(reduced->at(reduced->size() - 1).timestamp,
            history.at(history.size() - 1).timestamp);
}

TEST(DreamTest, EmptyMetricSetRejected) {
  TrainingSet set({"x1"}, {});
  set.Add({1.0}, {}).CheckOK();
  Dream dream;
  EXPECT_FALSE(dream.EstimateCostValue(set).ok());
}

TEST(DreamEstimateTest, PredictWithoutModelsFails) {
  DreamEstimate est;
  EXPECT_FALSE(est.Predict({1.0}).ok());
}

TEST(DreamEstimateTest, PredictBatchMatchesScalarExactly) {
  TrainingSet history = LinearHistory(30, /*noise_sigma=*/1.5, 31);
  Dream dream;
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  Rng rng(33);
  std::vector<Vector> queries;
  for (int i = 0; i < 29; ++i) {
    queries.push_back({rng.Uniform(-2, 7), rng.Uniform(-2, 7)});
  }
  Matrix x = Matrix::FromRows(queries).ValueOrDie();
  auto batch = est->PredictBatch(x);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->rows(), queries.size());
  ASSERT_EQ(batch->cols(), 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    const Vector scalar = est->Predict(queries[i]).ValueOrDie();
    for (size_t k = 0; k < scalar.size(); ++k) {
      SCOPED_TRACE("row " + std::to_string(i) + " metric " + std::to_string(k));
      MIDAS_EXPECT_SIMD_EQ(batch->At(i, k), scalar[k]);
    }
  }
}

TEST(DreamEstimateTest, PredictBatchErrorPaths) {
  DreamEstimate empty;
  EXPECT_FALSE(empty.PredictBatch(Matrix({{1.0, 2.0}})).ok());
  TrainingSet history = LinearHistory(20);
  Dream dream;
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->PredictBatch(Matrix({{1.0, 2.0, 3.0}})).ok());
  auto none = est->PredictBatch(Matrix(0, 2));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->rows(), 0u);
}

TEST(DreamTest, PredictCostsBatchMatchesPerQueryPredictCosts) {
  TrainingSet history = LinearHistory(40, /*noise_sigma=*/2.0, 37);
  Dream dream;
  Rng rng(41);
  std::vector<Vector> queries;
  for (int i = 0; i < 15; ++i) {
    queries.push_back({rng.Uniform(0, 5), rng.Uniform(0, 5)});
  }
  Matrix x = Matrix::FromRows(queries).ValueOrDie();
  auto batch = dream.PredictCostsBatch(history, x);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->rows(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Vector scalar = dream.PredictCosts(history, queries[i]).ValueOrDie();
    ASSERT_EQ(scalar.size(), batch->cols());
    for (size_t k = 0; k < scalar.size(); ++k) {
      SCOPED_TRACE("row " + std::to_string(i) + " metric " + std::to_string(k));
      MIDAS_EXPECT_SIMD_EQ(batch->At(i, k), scalar[k]);
    }
  }
}

// --- Incremental vs batch engine equivalence -------------------------------
//
// The incremental engine must be a drop-in replacement for the seed's
// refit-from-scratch loop: same selected window, same convergence flag,
// and numerically matching models at the chosen window.

void ExpectEnginesAgree(const TrainingSet& history, DreamOptions options,
                        const char* label) {
  options.engine = DreamEngine::kIncremental;
  auto incremental = Dream(options).EstimateCostValue(history);
  options.engine = DreamEngine::kBatch;
  auto batch = Dream(options).EstimateCostValue(history);
  ASSERT_EQ(incremental.ok(), batch.ok()) << label;
  if (!incremental.ok()) return;
  EXPECT_EQ(incremental->window_size, batch->window_size) << label;
  EXPECT_EQ(incremental->converged, batch->converged) << label;
  ASSERT_EQ(incremental->models.size(), batch->models.size()) << label;
  for (size_t k = 0; k < batch->models.size(); ++k) {
    const Vector& got = incremental->models[k].coefficients();
    const Vector& want = batch->models[k].coefficients();
    ASSERT_EQ(got.size(), want.size()) << label;
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_NEAR(got[j], want[j], 1e-8 * std::max(1.0, std::abs(want[j])))
          << label << " metric " << k << " coefficient " << j;
    }
    EXPECT_NEAR(incremental->r_squared[k], batch->r_squared[k], 1e-8)
        << label << " metric " << k;
  }
}

TEST(DreamEngineEquivalenceTest, RandomHistories) {
  Rng rng(211);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t l = 1 + rng.Index(4);
    const size_t n = 1 + rng.Index(3);
    const size_t history_size = l + 2 + rng.Index(60);
    std::vector<std::string> features(l), metrics(n);
    for (size_t j = 0; j < l; ++j) features[j] = "x" + std::to_string(j);
    for (size_t k = 0; k < n; ++k) metrics[k] = "c" + std::to_string(k);
    TrainingSet history(std::move(features), std::move(metrics));
    std::vector<Vector> truth(n, Vector(l + 1, 0.0));
    for (size_t k = 0; k < n; ++k) {
      for (size_t j = 0; j <= l; ++j) truth[k][j] = rng.Uniform(-3, 3);
    }
    const double noise = rng.Uniform(0.1, 4.0);
    for (size_t i = 0; i < history_size; ++i) {
      Vector x(l);
      for (size_t j = 0; j < l; ++j) x[j] = rng.Uniform(0, 10);
      Vector costs(n);
      for (size_t k = 0; k < n; ++k) {
        double y = truth[k][0];
        for (size_t j = 0; j < l; ++j) y += truth[k][j + 1] * x[j];
        costs[k] = y + rng.Gaussian(0, noise);
      }
      history.Add(std::move(x), std::move(costs)).CheckOK();
    }
    DreamOptions options;
    options.r2_require = rng.Uniform(0.5, 0.99);
    options.m_max = rng.Bernoulli(0.5) ? 0 : l + 2 + rng.Index(40);
    options.use_adjusted_r2 = rng.Bernoulli(0.3);
    ExpectEnginesAgree(history, options, "random history");
  }
}

TEST(DreamEngineEquivalenceTest, ConstantFeatureFallsBackToBatch) {
  // x2 never varies: every window's Gram matrix is singular, so the
  // incremental path must take the rank-revealing fallback — and still
  // agree with the batch engine exactly.
  Rng rng(223);
  TrainingSet history({"x1", "x2"}, {"c"});
  for (int i = 0; i < 30; ++i) {
    const double x1 = rng.Uniform(0, 10);
    history.Add({x1, 7.0}, {2 + 3 * x1 + rng.Gaussian(0, 1.0)}).CheckOK();
  }
  DreamOptions options;
  options.r2_require = 0.95;
  ExpectEnginesAgree(history, options, "constant feature");
}

TEST(DreamEngineEquivalenceTest, CollinearFeaturesFallBackToBatch) {
  Rng rng(227);
  TrainingSet history({"x1", "x2", "x3"}, {"c", "d"});
  for (int i = 0; i < 40; ++i) {
    const double x1 = rng.Uniform(0, 5);
    const double x3 = rng.Uniform(0, 5);
    history
        .Add({x1, 2 * x1, x3},
             {1 + x1 + x3 + rng.Gaussian(0, 0.5),
              4 - x3 + rng.Gaussian(0, 0.5)})
        .CheckOK();
    }
  DreamOptions options;
  options.r2_require = 0.9;
  ExpectEnginesAgree(history, options, "collinear features");
}

TEST(DreamEngineEquivalenceTest, UnreachableRequirementGrowsToCap) {
  // Forces full window growth on both engines — the configuration the
  // perf benchmarks use — and checks they still land on the same cap.
  Rng rng(229);
  TrainingSet history({"x1"}, {"c"});
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(0, 10);
    history.Add({x}, {x + rng.Gaussian(0, 2.0)}).CheckOK();
  }
  DreamOptions options;
  options.r2_require = 2.0;  // unreachable by construction
  options.m_max = 35;
  ExpectEnginesAgree(history, options, "unreachable R2");
}

// Property: the chosen window never exceeds min(m_max, history) and never
// undercuts L + 2.
class DreamWindowBoundsTest : public ::testing::TestWithParam<double> {};

TEST_P(DreamWindowBoundsTest, WindowWithinBounds) {
  const double noise = GetParam();
  TrainingSet history = LinearHistory(40, noise, 23);
  DreamOptions options;
  options.m_max = 25;
  Dream dream(options);
  auto est = dream.EstimateCostValue(history);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est->window_size, 4u);
  EXPECT_LE(est->window_size, 25u);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, DreamWindowBoundsTest,
                         ::testing::Values(0.0, 0.5, 2.0, 8.0, 32.0));

}  // namespace
}  // namespace midas
