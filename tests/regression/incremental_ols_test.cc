#include "regression/incremental_ols.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

// Tolerance for incremental (normal equations + Cholesky) vs batch
// (pivoted QR) agreement, relative to the magnitude of the value compared.
void ExpectClose(double got, double want, const char* what) {
  const double tol = 1e-8 * std::max(1.0, std::abs(want));
  EXPECT_NEAR(got, want, tol) << what;
}

TEST(IncrementalOlsTest, RejectsArityMismatch) {
  IncrementalOls engine(2, 1);
  EXPECT_FALSE(engine.Add({1.0}, {1.0}).ok());
  EXPECT_FALSE(engine.Add({1.0, 2.0}, {1.0, 2.0}).ok());
  EXPECT_TRUE(engine.Add({1.0, 2.0}, {1.0}).ok());
  EXPECT_EQ(engine.size(), 1u);
}

TEST(IncrementalOlsTest, RequiresStatisticalMinimum) {
  IncrementalOls engine(1, 1);
  std::vector<OlsModel> models;
  ASSERT_TRUE(engine.Add({1.0}, {2.0}).ok());
  ASSERT_TRUE(engine.Add({2.0}, {4.0}).ok());
  EXPECT_FALSE(engine.FitAll(&models).ok());  // m = 2 < L + 2 = 3
}

TEST(IncrementalOlsTest, RecoversExactLinearModel) {
  // y0 = 1 + 2 x1 + 3 x2, y1 = 10 - x1: noiseless, so the fit is exact.
  IncrementalOls engine(2, 2);
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    const double x1 = rng.Uniform(0, 5);
    const double x2 = rng.Uniform(0, 5);
    ASSERT_TRUE(
        engine.Add({x1, x2}, {1 + 2 * x1 + 3 * x2, 10 - x1}).ok());
  }
  std::vector<OlsModel> models;
  ASSERT_TRUE(engine.FitAll(&models).ok());
  ASSERT_EQ(models.size(), 2u);
  ExpectClose(models[0].coefficients()[0], 1.0, "intercept0");
  ExpectClose(models[0].coefficients()[1], 2.0, "slope x1");
  ExpectClose(models[0].coefficients()[2], 3.0, "slope x2");
  ExpectClose(models[1].coefficients()[0], 10.0, "intercept1");
  ExpectClose(models[1].coefficients()[1], -1.0, "slope -x1");
  EXPECT_NEAR(models[0].r_squared(), 1.0, 1e-9);
  EXPECT_EQ(models[0].num_samples(), 12u);
}

TEST(IncrementalOlsTest, FailsOnCollinearFeatures) {
  // x2 = 2 x1 exactly: the shared Gram matrix is singular, which is the
  // signal for DREAM's rank-revealing batch fallback.
  IncrementalOls engine(2, 1);
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    const double x1 = rng.Uniform(0, 5);
    ASSERT_TRUE(engine.Add({x1, 2 * x1}, {x1}).ok());
  }
  std::vector<OlsModel> models;
  EXPECT_FALSE(engine.FitAll(&models).ok());
}

TEST(IncrementalOlsTest, FailsOnConstantFeature) {
  // A feature constant over the window duplicates the intercept column.
  IncrementalOls engine(1, 1);
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Add({3.0}, {rng.Uniform(0, 1)}).ok());
  }
  std::vector<OlsModel> models;
  EXPECT_FALSE(engine.FitAll(&models).ok());
}

TEST(IncrementalOlsTest, ResetClearsStatistics) {
  IncrementalOls engine(1, 1);
  Rng rng(19);
  for (int i = 0; i < 8; ++i) {
    const double x = rng.Uniform(0, 5);
    ASSERT_TRUE(engine.Add({x}, {5 * x}).ok());
  }
  engine.Reset();
  EXPECT_EQ(engine.size(), 0u);
  for (int i = 0; i < 8; ++i) {
    const double x = rng.Uniform(0, 5);
    ASSERT_TRUE(engine.Add({x}, {1 + 2 * x}).ok());
  }
  std::vector<OlsModel> models;
  ASSERT_TRUE(engine.FitAll(&models).ok());
  ExpectClose(models[0].coefficients()[0], 1.0, "post-reset intercept");
  ExpectClose(models[0].coefficients()[1], 2.0, "post-reset slope");
}

// The property the whole PR rests on: at every window size, for every
// metric, the incremental engine agrees with batch FitOls on coefficients,
// SSE-derived R², and adjusted R² — across random problem shapes.
TEST(IncrementalOlsPropertyTest, MatchesBatchFitAcrossRandomProblems) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t l = 1 + rng.Index(5);       // features
    const size_t n = 1 + rng.Index(3);       // metrics
    const size_t m_cap = l + 2 + rng.Index(40);

    // Random ground-truth linear models with noise.
    std::vector<Vector> truth(n, Vector(l + 1, 0.0));
    for (size_t k = 0; k < n; ++k) {
      for (size_t j = 0; j <= l; ++j) truth[k][j] = rng.Uniform(-3, 3);
    }
    std::vector<Vector> xs;
    std::vector<Vector> ys(n);
    IncrementalOls engine(l, n);
    for (size_t i = 0; i < m_cap; ++i) {
      Vector x(l);
      for (size_t j = 0; j < l; ++j) x[j] = rng.Uniform(0, 10);
      Vector costs(n);
      for (size_t k = 0; k < n; ++k) {
        double y = truth[k][0];
        for (size_t j = 0; j < l; ++j) y += truth[k][j + 1] * x[j];
        costs[k] = y + rng.Gaussian(0, 0.5);
        ys[k].push_back(costs[k]);
      }
      xs.push_back(x);
      ASSERT_TRUE(engine.Add(x, costs).ok());

      if (i + 1 < l + 2) continue;  // below the statistical minimum
      std::vector<OlsModel> incremental;
      ASSERT_TRUE(engine.FitAll(&incremental).ok())
          << "trial " << trial << " window " << i + 1;
      ASSERT_EQ(incremental.size(), n);
      for (size_t k = 0; k < n; ++k) {
        auto batch = FitOls(xs, ys[k]);
        ASSERT_TRUE(batch.ok());
        const Vector& got = incremental[k].coefficients();
        const Vector& want = batch->coefficients();
        ASSERT_EQ(got.size(), want.size());
        for (size_t j = 0; j < got.size(); ++j) {
          ExpectClose(got[j], want[j], "coefficient");
        }
        ExpectClose(incremental[k].r_squared(), batch->r_squared(), "R2");
        ExpectClose(incremental[k].adjusted_r_squared(),
                    batch->adjusted_r_squared(), "adjusted R2");
      }
    }
  }
}

}  // namespace
}  // namespace midas
