#include "regression/ols.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace midas {
namespace {

TEST(OlsTest, RecoversExactLinearModel) {
  // c = 2 + 3 x1 - x2, no noise.
  std::vector<Vector> xs;
  Vector ys;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const double x1 = rng.Uniform(0, 10);
    const double x2 = rng.Uniform(0, 10);
    xs.push_back({x1, x2});
    ys.push_back(2.0 + 3.0 * x1 - x2);
  }
  auto model = FitOls(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(model->coefficients()[1], 3.0, 1e-9);
  EXPECT_NEAR(model->coefficients()[2], -1.0, 1e-9);
  EXPECT_NEAR(model->r_squared(), 1.0, 1e-12);
  EXPECT_NEAR(model->sse(), 0.0, 1e-9);
}

TEST(OlsTest, PredictMatchesEquation) {
  std::vector<Vector> xs = {{0}, {1}, {2}, {3}};
  Vector ys = {1, 3, 5, 7};  // c = 1 + 2x
  auto model = FitOls(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Predict({10}).ValueOrDie(), 21.0, 1e-9);
}

TEST(OlsTest, PredictRejectsWrongArity) {
  auto model = FitOls({{0}, {1}, {2}}, {0, 1, 2});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Predict({1, 2}).ok());
}

TEST(OlsTest, UnfittedModelCannotPredict) {
  OlsModel model;
  EXPECT_FALSE(model.Predict({1.0}).ok());
}

TEST(OlsTest, RequiresLPlusTwoObservations) {
  // L = 2 needs at least 4 observations.
  std::vector<Vector> xs = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_FALSE(FitOls(xs, {1, 2, 3}).ok());
  xs.push_back({7, 9});
  EXPECT_TRUE(FitOls(xs, {1, 2, 3, 4}).ok());
}

TEST(OlsTest, RejectsMismatchedSizes) {
  EXPECT_FALSE(FitOls({{1}, {2}, {3}}, {1, 2}).ok());
}

TEST(OlsTest, RejectsRaggedRows) {
  EXPECT_FALSE(FitOls({{1}, {2, 3}, {4}}, {1, 2, 3}).ok());
}

TEST(OlsTest, RejectsEmpty) {
  EXPECT_FALSE(FitOls({}, {}).ok());
}

TEST(OlsTest, RSquaredMatchesPaperTable2) {
  // First M = 4 rows of the paper's Table 2 dataset must give R² = 0.7571.
  const std::vector<Vector> xs = {
      {0.4916, 0.2977}, {0.6313, 0.0482}, {0.9481, 0.8232},
      {0.4855, 2.7056}};
  const Vector ys = {20.640, 15.557, 20.971, 24.878};
  auto model = FitOls(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->r_squared(), 0.7571, 5e-4);
}

TEST(OlsTest, ConstantResponseGivesRSquaredOne) {
  auto model = FitOls({{1}, {2}, {3}, {4}}, {5, 5, 5, 5});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->r_squared(), 1.0);  // SST == 0 convention
}

TEST(OlsTest, ConstantFeatureHandledByRankRevealingFit) {
  // Feature 2 constant: must fit on the remaining structure, not fail.
  std::vector<Vector> xs = {{1, 7}, {2, 7}, {3, 7}, {4, 7}, {5, 7}};
  Vector ys = {2, 4, 6, 8, 10};
  auto model = FitOls(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Predict({6, 7}).ValueOrDie(), 12.0, 1e-8);
}

TEST(OlsTest, AdjustedRSquaredBelowPlainForImperfectFit) {
  Rng rng(3);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 12; ++i) {
    const double x = rng.Uniform(0, 10);
    xs.push_back({x});
    ys.push_back(1.0 + 2.0 * x + rng.Gaussian(0, 1.0));
  }
  auto model = FitOls(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->adjusted_r_squared(), model->r_squared());
  EXPECT_GT(model->r_squared(), 0.8);
}

TEST(OlsTest, NoisyFitHasPositiveSse) {
  Rng rng(4);
  std::vector<Vector> xs;
  Vector ys;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.Uniform(0, 10);
    xs.push_back({x});
    ys.push_back(3.0 * x + rng.Gaussian(0, 0.5));
  }
  auto model = FitOls(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->sse(), 0.0);
  EXPECT_GT(model->sst(), model->sse());
  EXPECT_EQ(model->num_samples(), 30u);
  EXPECT_EQ(model->num_features(), 1u);
}

TEST(OlsModelTest, ConstantResponseR2HonestAboutResidualError) {
  // SST == 0 (constant response): a perfect fit keeps the conventional
  // R² = 1, but leftover SSE must not masquerade as a perfect fit.
  const OlsModel perfect({5.0}, /*sse=*/0.0, /*sst=*/0.0, /*num_samples=*/6);
  EXPECT_DOUBLE_EQ(perfect.r_squared(), 1.0);
  const OlsModel failed({5.0}, /*sse=*/0.5, /*sst=*/0.0, /*num_samples=*/6);
  EXPECT_DOUBLE_EQ(failed.r_squared(), 0.0);
}

// Property sweep: R² is invariant to affine scaling of features.
class OlsScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(OlsScalingTest, RSquaredInvariantToFeatureScaling) {
  const double scale = GetParam();
  Rng rng(5);
  std::vector<Vector> xs, xs_scaled;
  Vector ys;
  for (int i = 0; i < 15; ++i) {
    const double x1 = rng.Uniform(0, 1);
    const double x2 = rng.Uniform(0, 1);
    xs.push_back({x1, x2});
    xs_scaled.push_back({x1 * scale, x2 * scale});
    ys.push_back(1.0 + x1 - 2.0 * x2 + rng.Gaussian(0, 0.1));
  }
  auto m1 = FitOls(xs, ys);
  auto m2 = FitOls(xs_scaled, ys);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_NEAR(m1->r_squared(), m2->r_squared(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Scales, OlsScalingTest,
                         ::testing::Values(0.001, 0.1, 10.0, 1000.0));

}  // namespace
}  // namespace midas
