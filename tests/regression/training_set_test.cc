#include "regression/training_set.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TrainingSet MakeSet() {
  return TrainingSet({"x1", "x2"}, {"seconds", "dollars"});
}

TEST(TrainingSetTest, EmptyOnConstruction) {
  TrainingSet set = MakeSet();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.num_features(), 2u);
  EXPECT_EQ(set.num_metrics(), 2u);
}

TEST(TrainingSetTest, AddAssignsMonotonicTimestamps) {
  TrainingSet set = MakeSet();
  ASSERT_TRUE(set.Add({1.0, 2.0}, {10.0, 0.1}).ok());
  ASSERT_TRUE(set.Add({2.0, 3.0}, {20.0, 0.2}).ok());
  EXPECT_EQ(set.at(0).timestamp, 0);
  EXPECT_EQ(set.at(1).timestamp, 1);
  EXPECT_EQ(set.latest_timestamp(), 1);
}

TEST(TrainingSetTest, AddRejectsArityMismatch) {
  TrainingSet set = MakeSet();
  EXPECT_FALSE(set.Add({1.0}, {10.0, 0.1}).ok());
  EXPECT_FALSE(set.Add({1.0, 2.0}, {10.0}).ok());
}

TEST(TrainingSetTest, AddRejectsOutOfOrderTimestamps) {
  TrainingSet set = MakeSet();
  Observation late;
  late.timestamp = 10;
  late.features = {1, 2};
  late.costs = {1, 2};
  ASSERT_TRUE(set.Add(late).ok());
  Observation early;
  early.timestamp = 5;
  early.features = {1, 2};
  early.costs = {1, 2};
  EXPECT_FALSE(set.Add(early).ok());
}

TEST(TrainingSetTest, RecentFeaturesReturnsNewestWindow) {
  TrainingSet set = MakeSet();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        set.Add({static_cast<double>(i), 0.0}, {1.0, 1.0}).ok());
  }
  auto window = set.RecentFeatures(2);
  ASSERT_TRUE(window.ok());
  ASSERT_EQ(window->size(), 2u);
  EXPECT_DOUBLE_EQ((*window)[0][0], 3.0);  // oldest of the window first
  EXPECT_DOUBLE_EQ((*window)[1][0], 4.0);
}

TEST(TrainingSetTest, RecentCostsAlignsWithFeatures) {
  TrainingSet set = MakeSet();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(set.Add({0.0, 0.0},
                        {static_cast<double>(i), static_cast<double>(10 * i)})
                    .ok());
  }
  auto seconds = set.RecentCosts(3, 0);
  auto dollars = set.RecentCosts(3, 1);
  ASSERT_TRUE(seconds.ok());
  ASSERT_TRUE(dollars.ok());
  EXPECT_EQ(*seconds, (Vector{1, 2, 3}));
  EXPECT_EQ(*dollars, (Vector{10, 20, 30}));
}

TEST(TrainingSetTest, WindowLargerThanHistoryFails) {
  TrainingSet set = MakeSet();
  ASSERT_TRUE(set.Add({0, 0}, {1, 1}).ok());
  EXPECT_FALSE(set.RecentFeatures(2).ok());
  EXPECT_FALSE(set.RecentCosts(2, 0).ok());
}

TEST(TrainingSetTest, BadMetricIndexFails) {
  TrainingSet set = MakeSet();
  ASSERT_TRUE(set.Add({0, 0}, {1, 1}).ok());
  EXPECT_FALSE(set.RecentCosts(1, 2).ok());
}

TEST(TrainingSetTest, TrimToNewestKeepsTail) {
  TrainingSet set = MakeSet();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(set.Add({static_cast<double>(i), 0}, {1, 1}).ok());
  }
  set.TrimToNewest(2);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.at(0).features[0], 4.0);
  EXPECT_DOUBLE_EQ(set.at(1).features[0], 5.0);
}

TEST(TrainingSetTest, TrimLargerThanSizeIsNoOp) {
  TrainingSet set = MakeSet();
  ASSERT_TRUE(set.Add({0, 0}, {1, 1}).ok());
  set.TrimToNewest(10);
  EXPECT_EQ(set.size(), 1u);
}

TEST(TrainingSetTest, EvictOlderThanDropsStaleObservations) {
  TrainingSet set = MakeSet();
  for (int i = 0; i < 5; ++i) {
    Observation obs;
    obs.timestamp = i * 10;
    obs.features = {0, 0};
    obs.costs = {1, 1};
    ASSERT_TRUE(set.Add(obs).ok());
  }
  set.EvictOlderThan(25);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.at(0).timestamp, 30);
}

TEST(TrainingWindowTest, ViewMatchesCopyingAccessors) {
  TrainingSet set = MakeSet();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(set.Add({1.0 * i, 2.0 * i}, {10.0 * i, 0.1 * i}).ok());
  }
  auto window = set.RecentWindow(4);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->size(), 4u);
  const auto features = set.RecentFeatures(4).ValueOrDie();
  const auto costs = set.RecentCosts(4, 1).ValueOrDie();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(window->features(i), features[i]);
    EXPECT_DOUBLE_EQ(window->cost(i, 1), costs[i]);
  }
  EXPECT_EQ(window->CopyFeatures(), features);
  EXPECT_EQ(window->CopyCosts(1), costs);
  EXPECT_FALSE(set.RecentWindow(7).ok());
}

TEST(TrainingWindowTest, NewestSubViewAlignsWithNewestEnd) {
  TrainingSet set = MakeSet();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(set.Add({1.0 * i, 0.0}, {1.0 * i, 0.0}).ok());
  }
  auto window = set.RecentWindow(5).ValueOrDie();
  TrainingWindow newest = window.Newest(2);
  EXPECT_EQ(newest.size(), 2u);
  // The sub-view's oldest element is the full set's second-newest.
  EXPECT_DOUBLE_EQ(newest.features(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(newest.features(1)[0], 4.0);
}

TEST(TrainingSetTest, NamesPreserved) {
  TrainingSet set = MakeSet();
  EXPECT_EQ(set.feature_names()[1], "x2");
  EXPECT_EQ(set.metric_names()[0], "seconds");
}

TEST(TrainingSetTest, GenerationCountsEveryMutation) {
  TrainingSet set = MakeSet();
  const uint64_t g0 = set.generation();
  ASSERT_TRUE(set.Add({0, 0}, {1, 1}).ok());
  ASSERT_TRUE(set.Add({1, 0}, {1, 1}).ok());
  EXPECT_EQ(set.generation(), g0 + 2);
  set.TrimToNewest(1);
  EXPECT_EQ(set.generation(), g0 + 3);
  set.TrimToNewest(5);  // no-op: nothing changed, nothing counted
  EXPECT_EQ(set.generation(), g0 + 3);
  set.EvictOlderThan(-100);  // no-op
  EXPECT_EQ(set.generation(), g0 + 3);
  // A rejected Add mutates nothing.
  ASSERT_FALSE(set.Add({0.0}, {1, 1}).ok());
  EXPECT_EQ(set.generation(), g0 + 3);
}

TEST(TrainingSetTest, FrozenCopyNeverObservesLaterMutation) {
  // Copies are O(1) (they share the observation buffer); the copy must
  // stay frozen while the original keeps appending in place.
  TrainingSet set = MakeSet();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(set.Add({1.0 * i, 0.0}, {2.0 * i, 0.0}).ok());
  }
  const TrainingSet frozen = set;
  for (int i = 3; i < 40; ++i) {  // crosses several buffer growths
    ASSERT_TRUE(set.Add({1.0 * i, 0.0}, {2.0 * i, 0.0}).ok());
  }
  set.TrimToNewest(5);
  ASSERT_EQ(frozen.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(frozen.at(i).features[0], 1.0 * i);
    EXPECT_DOUBLE_EQ(frozen.at(i).costs[0], 2.0 * i);
  }
  // The frozen copy's windows stay valid: its own generation is unchanged.
  auto window = frozen.RecentWindow(3);
  ASSERT_TRUE(window.ok());
  EXPECT_DOUBLE_EQ(window->features(2)[0], 2.0);
}

TEST(TrainingSetTest, SiblingCopiesDivergeOnAppend) {
  // Two copies appending different observations must not see each other's
  // writes (the second appender forks the shared buffer).
  TrainingSet a = MakeSet();
  ASSERT_TRUE(a.Add({1.0, 0.0}, {1.0, 0.0}).ok());
  TrainingSet b = a;
  ASSERT_TRUE(a.Add({2.0, 0.0}, {2.0, 0.0}).ok());
  ASSERT_TRUE(b.Add({3.0, 0.0}, {3.0, 0.0}).ok());
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(a.at(1).features[0], 2.0);
  EXPECT_DOUBLE_EQ(b.at(1).features[0], 3.0);
  EXPECT_DOUBLE_EQ(a.at(0).features[0], 1.0);
  EXPECT_DOUBLE_EQ(b.at(0).features[0], 1.0);
}

#if MIDAS_TRAINING_WINDOW_CHECKS
TEST(TrainingWindowDeathTest, StaleWindowFailsLoudly) {
  // Reading a window after its owning set mutated is a use-after-mutation
  // bug; with checks compiled in (debug/sanitizer builds) it must abort
  // instead of silently reading possibly-reallocated memory.
  TrainingSet set = MakeSet();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(set.Add({1.0 * i, 0.0}, {1.0, 1.0}).ok());
  }
  auto window = set.RecentWindow(2).ValueOrDie();
  ASSERT_TRUE(set.Add({9.0, 0.0}, {1.0, 1.0}).ok());
  EXPECT_DEATH(window.features(0), "stale view");
  EXPECT_DEATH(window.CopyCosts(0), "stale view");
}
#endif  // MIDAS_TRAINING_WINDOW_CHECKS

}  // namespace
}  // namespace midas
