#include "serve/admission_queue.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace midas {
namespace {

AdmissionQueue<int>::Options SmallQueue(size_t capacity = 16,
                                        size_t tenant_cap = 0,
                                        uint64_t quantum = 1) {
  AdmissionQueue<int>::Options options;
  options.capacity = capacity;
  options.tenant_inflight_cap = tenant_cap;
  options.drr_quantum = quantum;
  return options;
}

TEST(AdmissionQueueTest, SingleTenantIsFifo) {
  AdmissionQueue<int> queue(SmallQueue());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Push("a", i).ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto d = queue.Pop();
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->tenant, "a");
    EXPECT_EQ(d->item, i);
    queue.Release("a");
  }
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionQueueTest, AtMostOneDispatchedPerTenant) {
  AdmissionQueue<int> queue(SmallQueue());
  ASSERT_TRUE(queue.Push("a", 1).ok());
  ASSERT_TRUE(queue.Push("a", 2).ok());
  ASSERT_TRUE(queue.Push("b", 10).ok());
  // a's head dispatches first; a's second item must wait for Release even
  // though it is older than anything else — b is the only dispatchable
  // lane meanwhile.
  auto first = queue.Pop();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->tenant, "a");
  EXPECT_EQ(first->item, 1);
  auto second = queue.Pop();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->tenant, "b");
  queue.Release("a");
  auto third = queue.Pop();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->tenant, "a");
  EXPECT_EQ(third->item, 2);
}

TEST(AdmissionQueueTest, CapacityRejectionIsResourceExhausted) {
  AdmissionQueue<int> queue(SmallQueue(/*capacity=*/2));
  ASSERT_TRUE(queue.Push("a", 1).ok());
  ASSERT_TRUE(queue.Push("b", 2).ok());
  Status rejected = queue.Push("c", 3);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.stats().rejected_capacity, 1u);
  EXPECT_EQ(queue.stats().accepted, 2u);
}

TEST(AdmissionQueueTest, TenantCapCountsDispatchedUntilRelease) {
  AdmissionQueue<int> queue(SmallQueue(/*capacity=*/16, /*tenant_cap=*/1));
  ASSERT_TRUE(queue.Push("a", 1).ok());
  EXPECT_EQ(queue.Push("a", 2).code(), StatusCode::kResourceExhausted);
  // Dispatching does not free the tenant's slot — only Release does.
  ASSERT_TRUE(queue.Pop().ok());
  EXPECT_EQ(queue.Push("a", 2).code(), StatusCode::kResourceExhausted);
  queue.Release("a");
  EXPECT_TRUE(queue.Push("a", 2).ok());
  EXPECT_EQ(queue.stats().rejected_tenant_cap, 2u);
}

TEST(AdmissionQueueTest, DrrHonoursWeights) {
  AdmissionQueue<int> queue(SmallQueue());
  queue.SetTenantWeight("a", 2);
  queue.SetTenantWeight("b", 1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.Push("a", i).ok());
    ASSERT_TRUE(queue.Push("b", i).ok());
  }
  // With weight 2 vs 1 and both lanes backlogged, each full ring pass
  // serves a twice per b's once: a a b a a b ...
  std::vector<std::string> order;
  for (int i = 0; i < 9; ++i) {
    auto d = queue.Pop();
    ASSERT_TRUE(d.ok());
    order.push_back(d->tenant);
    queue.Release(d->tenant);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a", "a", "b", "a", "a", "b",
                                             "a", "a", "b"}));
}

TEST(AdmissionQueueTest, CloseDrainsThenFailsPop) {
  AdmissionQueue<int> queue(SmallQueue());
  ASSERT_TRUE(queue.Push("a", 1).ok());
  ASSERT_TRUE(queue.Push("a", 2).ok());
  queue.Close();
  EXPECT_EQ(queue.Push("a", 3).code(), StatusCode::kFailedPrecondition);
  for (int expected : {1, 2}) {
    auto d = queue.Pop();
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->item, expected);
    queue.Release("a");
  }
  EXPECT_EQ(queue.Pop().status().code(), StatusCode::kFailedPrecondition);
}

TEST(AdmissionQueueTest, PopBlocksUntilPushArrives) {
  AdmissionQueue<int> queue(SmallQueue());
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    auto d = queue.Pop();
    if (d.ok()) got.store(d->item);
  });
  // The consumer is (very likely) parked in Pop by now; the push must wake
  // it. Correctness does not depend on the sleep — it only widens the
  // window in which a broken wakeup would hang the join below.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(queue.Push("a", 42).ok());
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(AdmissionQueueTest, ConcurrentPushersAndPoppersConserveItems) {
  AdmissionQueue<int> queue(SmallQueue(/*capacity=*/1024));
  constexpr int kPushers = 4;
  constexpr int kPerPusher = 200;
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kPushers; ++p) {
    threads.emplace_back([&, p] {
      const std::string tenant = "t" + std::to_string(p);
      for (int i = 0; i < kPerPusher; ++i) {
        while (!queue.Push(tenant, p * kPerPusher + i).ok()) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto d = queue.Pop();
        if (!d.ok()) break;
        popped_sum.fetch_add(static_cast<uint64_t>(d->item));
        popped_count.fetch_add(1);
        queue.Release(d->tenant);
      }
    });
  }
  for (int p = 0; p < kPushers; ++p) threads[p].join();
  queue.Close();
  for (size_t t = kPushers; t < threads.size(); ++t) threads[t].join();
  const int total = kPushers * kPerPusher;
  EXPECT_EQ(popped_count.load(), total);
  EXPECT_EQ(popped_sum.load(),
            static_cast<uint64_t>(total) * (total - 1) / 2);
  EXPECT_EQ(queue.stats().dispatched, static_cast<uint64_t>(total));
}

}  // namespace
}  // namespace midas
