#include "serve/query_service.h"

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "midas/medical.h"
#include "support/simd_testing.h"

namespace midas {
namespace {

MidasSystem MakeSystem(uint64_t seed = 2019) {
  Federation federation = Federation::PaperFederation();
  Catalog catalog = MakeMedicalCatalog(/*scale=*/0.05).ValueOrDie();
  PlaceMedicalTables(&federation).CheckOK();
  MidasOptions options;
  options.seed = seed;
  return MidasSystem(std::move(federation), std::move(catalog), options);
}

QueryPolicy MakePolicy(double seconds_weight) {
  QueryPolicy policy;
  policy.weights = {seconds_weight, 1.0 - seconds_weight};
  return policy;
}

TEST(QueryServiceTest, OutcomesMatchSerialRunQuery) {
  // The service half and the serial half start from identical systems
  // (same seed, same bootstrap); a single tenant's requests must then
  // produce the same outcomes the serial RunQuery loop produces, since
  // per-tenant serialization makes the service's execution order the
  // submission order.
  MidasSystem served_system = MakeSystem(91);
  MidasSystem serial_system = MakeSystem(91);
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(served_system.Bootstrap("s", query, 16).ok());
  ASSERT_TRUE(serial_system.Bootstrap("s", query, 16).ok());

  constexpr size_t kQueries = 4;
  const double weights[kQueries] = {0.5, 0.7, 0.3, 0.5};

  ServeOptions options;
  options.slots = 2;
  QueryService service(&served_system, options);
  std::vector<std::future<QueryService::Result>> futures;
  for (size_t i = 0; i < kQueries; ++i) {
    auto submitted =
        service.Submit("s", QueryRequest{"s", query, MakePolicy(weights[i])});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  for (size_t i = 0; i < kQueries; ++i) {
    QueryService::Result served = futures[i].get();
    ASSERT_TRUE(served.ok()) << served.status();
    auto serial =
        serial_system.RunQuery("s", query, MakePolicy(weights[i]));
    ASSERT_TRUE(serial.ok());
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(served->execution_seq, i + 1);
    EXPECT_EQ(served->admission_epoch, served->outcome.moqp.snapshot_epoch);
    EXPECT_GT(served->feedback_epoch, served->admission_epoch);
    EXPECT_EQ(served->outcome.moqp.chosen_plan().ToString(),
              serial->moqp.chosen_plan().ToString());
    ASSERT_EQ(served->outcome.predicted.size(), serial->predicted.size());
    for (size_t k = 0; k < serial->predicted.size(); ++k) {
      MIDAS_EXPECT_SIMD_EQ(served->outcome.predicted[k],
                           serial->predicted[k]);
    }
    EXPECT_DOUBLE_EQ(served->outcome.actual.seconds, serial->actual.seconds);
    EXPECT_DOUBLE_EQ(served->outcome.actual.dollars, serial->actual.dollars);
  }
}

TEST(QueryServiceTest, TenantInflightCapRejectsBurst) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  ASSERT_TRUE(system.Bootstrap("s", query, 16).ok());
  ServeOptions options;
  options.slots = 1;
  options.tenant_inflight_cap = 2;
  QueryService service(&system, options);
  // Three back-to-back submits: the first two occupy the tenant's queued +
  // dispatched slots; the third arrives microseconds later, long before a
  // full optimize + execute could have released the first, so it must be
  // rejected.
  auto first = service.Submit("s", QueryRequest{"s", query, MakePolicy(0.5)});
  auto second = service.Submit("s", QueryRequest{"s", query, MakePolicy(0.5)});
  auto third = service.Submit("s", QueryRequest{"s", query, MakePolicy(0.5)});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(first->get().ok());
  EXPECT_TRUE(second->get().ok());
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.admission.rejected_tenant_cap, 1u);
  EXPECT_EQ(stats.served, 2u);
}

TEST(QueryServiceTest, StatsAggregateAcrossSlots) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  for (const std::string scope : {"a", "b"}) {
    ASSERT_TRUE(system.Bootstrap(scope, query, 16).ok());
  }
  ServeOptions options;
  options.slots = 2;
  QueryService service(&system, options);
  constexpr size_t kPerTenant = 3;
  std::vector<std::future<QueryService::Result>> futures;
  for (size_t i = 0; i < kPerTenant; ++i) {
    for (const std::string scope : {"a", "b"}) {
      auto submitted = service.Submit(
          scope, QueryRequest{scope, query, MakePolicy(0.5)});
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(*submitted));
    }
  }
  service.Drain();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.served, 2 * kPerTenant);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.admission.accepted, 2 * kPerTenant);
  EXPECT_EQ(stats.admission.dispatched, 2 * kPerTenant);
  EXPECT_EQ(stats.queue_latency.count(), 2 * kPerTenant);
  EXPECT_EQ(stats.service_latency.count(), 2 * kPerTenant);
  EXPECT_TRUE(stats.service_latency.ValueAtQuantile(0.5).ok());
}

TEST(QueryServiceTest, FailedOptimizationsSurfaceThroughTheFuture) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  QueryService service(&system);
  // No bootstrap: the scope has no history, so optimization fails; the
  // error must come back through the future, and count as failed.
  auto submitted =
      service.Submit("cold", QueryRequest{"cold", query, MakePolicy(0.5)});
  ASSERT_TRUE(submitted.ok());
  EXPECT_FALSE(submitted->get().ok());
  service.Drain();
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.stats().served, 0u);
}

TEST(QueryServiceTest, ShutdownRejectsNewSubmissions) {
  MidasSystem system = MakeSystem();
  QueryPlan query = MakeExample21Query().ValueOrDie();
  QueryService service(&system);
  service.Shutdown();
  auto submitted =
      service.Submit("s", QueryRequest{"s", query, MakePolicy(0.5)});
  EXPECT_EQ(submitted.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace midas
