#ifndef MIDAS_TESTS_SUPPORT_SIMD_TESTING_H_
#define MIDAS_TESTS_SUPPORT_SIMD_TESTING_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/simd.h"

/// Determinism-policy comparator for values that flow through the SIMD
/// kernel layer (linalg/simd.h). When the scalar tier is pinned
/// (MIDAS_FORCE_SCALAR build or environment, or no vector tier for this
/// CPU) two evaluation orders of the same sum must agree bitwise; when a
/// vector tier is active its reassociated FMA sums may drift from the
/// scalar association by at most 1e-12 relative error. Tests that compare
/// a batched (GEMM) path against a per-row (dot) path assert through this
/// macro so the same suite is a bitwise gate under the knob and a
/// tolerance gate otherwise.
#define MIDAS_EXPECT_SIMD_EQ(actual, expected)                             \
  do {                                                                     \
    const double midas_simd_actual_ = (actual);                            \
    const double midas_simd_expected_ = (expected);                        \
    if (!::midas::simd::Enabled()) {                                       \
      EXPECT_EQ(midas_simd_actual_, midas_simd_expected_);                 \
    } else {                                                               \
      EXPECT_NEAR(midas_simd_actual_, midas_simd_expected_,                \
                  1e-12 * std::max({1.0, std::abs(midas_simd_expected_),   \
                                    std::abs(midas_simd_actual_)}));       \
    }                                                                      \
  } while (0)

#endif  // MIDAS_TESTS_SUPPORT_SIMD_TESTING_H_
