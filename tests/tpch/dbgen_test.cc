#include "tpch/dbgen.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace midas {
namespace tpch {
namespace {

TEST(DbGenTest, RowCountsMatchSchema) {
  DbGen gen(0.001);
  EXPECT_EQ(gen.RowCount("lineitem").ValueOrDie(), 6000u);
  EXPECT_EQ(gen.RowCount("region").ValueOrDie(), 5u);
  EXPECT_FALSE(gen.RowCount("bogus").ok());
}

TEST(DbGenTest, RowsAreDeterministic) {
  DbGen a(0.001, 99), b(0.001, 99);
  for (uint64_t i : {0ull, 5ull, 100ull}) {
    EXPECT_EQ(DbGen::FormatRow(a.GenerateRow("orders", i).ValueOrDie()),
              DbGen::FormatRow(b.GenerateRow("orders", i).ValueOrDie()));
  }
}

TEST(DbGenTest, DifferentSeedsDiffer) {
  DbGen a(0.001, 1), b(0.001, 2);
  EXPECT_NE(DbGen::FormatRow(a.GenerateRow("orders", 0).ValueOrDie()),
            DbGen::FormatRow(b.GenerateRow("orders", 0).ValueOrDie()));
}

TEST(DbGenTest, RowIndexIndependence) {
  // Row i must not depend on whether earlier rows were generated.
  DbGen gen(0.001, 7);
  const Row direct = gen.GenerateRow("customer", 50).ValueOrDie();
  DbGen gen2(0.001, 7);
  gen2.GenerateRow("customer", 0).ValueOrDie();
  const Row after_other = gen2.GenerateRow("customer", 50).ValueOrDie();
  EXPECT_EQ(DbGen::FormatRow(direct), DbGen::FormatRow(after_other));
}

TEST(DbGenTest, PrimaryKeysAreSequential) {
  DbGen gen(0.001);
  for (uint64_t i : {0ull, 1ull, 41ull}) {
    const Row row = gen.GenerateRow("part", i).ValueOrDie();
    EXPECT_EQ(std::get<int64_t>(row[0]), static_cast<int64_t>(i + 1));
  }
}

TEST(DbGenTest, RowArityMatchesSchemaColumns) {
  DbGen gen(0.001);
  EXPECT_EQ(gen.GenerateRow("lineitem", 0).ValueOrDie().size(), 16u);
  EXPECT_EQ(gen.GenerateRow("orders", 0).ValueOrDie().size(), 9u);
  EXPECT_EQ(gen.GenerateRow("region", 0).ValueOrDie().size(), 3u);
}

TEST(DbGenTest, OutOfRangeRowRejected) {
  DbGen gen(0.001);
  EXPECT_FALSE(gen.GenerateRow("region", 5).ok());
}

TEST(DbGenTest, ShipModesAreValidDomain) {
  DbGen gen(0.001);
  const std::set<std::string> valid = {"AIR",  "FOB",     "MAIL", "RAIL",
                                       "REG AIR", "SHIP", "TRUCK"};
  // l_shipmode is column 14 of lineitem.
  for (uint64_t i = 0; i < 50; ++i) {
    const Row row = gen.GenerateRow("lineitem", i).ValueOrDie();
    EXPECT_TRUE(valid.count(std::get<std::string>(row[14])))
        << std::get<std::string>(row[14]);
  }
}

TEST(DbGenTest, DatesWithinDbgenRange) {
  DbGen gen(0.001);
  for (uint64_t i = 0; i < 50; ++i) {
    const Row row = gen.GenerateRow("orders", i).ValueOrDie();
    const std::string date = std::get<std::string>(row[4]);  // o_orderdate
    EXPECT_EQ(date.size(), 10u) << date;
    const int year = std::stoi(date.substr(0, 4));
    EXPECT_GE(year, 1992);
    EXPECT_LE(year, 1998);
    const int month = std::stoi(date.substr(5, 2));
    EXPECT_GE(month, 1);
    EXPECT_LE(month, 12);
    const int day = std::stoi(date.substr(8, 2));
    EXPECT_GE(day, 1);
    EXPECT_LE(day, 31);
  }
}

TEST(DbGenTest, GenerateStreamsAllRows) {
  DbGen gen(0.001);
  uint64_t count = 0;
  ASSERT_TRUE(gen.Generate("supplier", [&](uint64_t, const Row&) {
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, gen.RowCount("supplier").ValueOrDie());
}

TEST(DbGenTest, GenerateStopsEarlyWhenSinkReturnsFalse) {
  DbGen gen(0.001);
  uint64_t count = 0;
  ASSERT_TRUE(gen.Generate("supplier", [&](uint64_t, const Row&) {
                    return ++count < 3;
                  })
                  .ok());
  EXPECT_EQ(count, 3u);
}

TEST(DbGenTest, GenerateAllHonorsLimit) {
  DbGen gen(0.001);
  auto rows = gen.GenerateAll("customer", 10);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST(DbGenTest, FormatRowIsPipeSeparated) {
  Row row = {int64_t{1}, 2.5, std::string("abc")};
  EXPECT_EQ(DbGen::FormatRow(row), "1|2.5|abc");
}

TEST(DbGenTest, WriteTblProducesDbgenFormat) {
  DbGen gen(0.001);
  const std::string path = testing::TempDir() + "/region.tbl";
  ASSERT_TRUE(gen.WriteTbl("region", path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.back(), '|');  // dbgen's trailing separator
  }
  EXPECT_EQ(lines, 5u);
  std::remove(path.c_str());
}

TEST(DbGenTest, InvalidScaleFactorFails) {
  DbGen gen(0.0);
  EXPECT_FALSE(gen.RowCount("region").ok());
}

}  // namespace
}  // namespace tpch
}  // namespace midas
