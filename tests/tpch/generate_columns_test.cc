#include "tpch/dbgen.h"

#include <gtest/gtest.h>

#include "tpch/table_provider.h"

namespace midas {
namespace tpch {
namespace {

/// Asserts cell (row, col) of `table` holds exactly the value in `cell`.
void ExpectCellEq(const exec::ColumnTable& table, uint64_t row, size_t col,
                  const Value& cell) {
  const exec::Column& column = table.columns[col];
  if (std::holds_alternative<int64_t>(cell)) {
    EXPECT_EQ(column.IntAt(row), std::get<int64_t>(cell))
        << "row " << row << " col " << col;
  } else if (std::holds_alternative<double>(cell)) {
    EXPECT_EQ(column.DoubleAt(row), std::get<double>(cell))
        << "row " << row << " col " << col;
  } else {
    EXPECT_EQ(column.StringAt(row), std::get<std::string>(cell))
        << "row " << row << " col " << col;
  }
}

/// Checks GenerateColumns(table) reproduces GenerateRow cell-for-cell for
/// the first `limit` rows (0 = all).
void CheckColumnsMatchRows(const DbGen& gen, const std::string& table,
                           uint64_t limit = 0) {
  auto columns = gen.GenerateColumns(table, 0, limit);
  ASSERT_TRUE(columns.ok()) << columns.status().ToString();
  const exec::ColumnTable& t = columns.value();
  const uint64_t rows =
      limit == 0 ? gen.RowCount(table).value() : limit;
  ASSERT_EQ(t.rows, rows);
  for (uint64_t i = 0; i < rows; ++i) {
    const Row row = gen.GenerateRow(table, i).value();
    ASSERT_EQ(row.size(), t.columns.size());
    for (size_t c = 0; c < row.size(); ++c) {
      ExpectCellEq(t, i, c, row[c]);
    }
  }
}

TEST(GenerateColumnsTest, MatchesGenerateRowOnSmallTables) {
  DbGen gen(0.001, 2019);
  CheckColumnsMatchRows(gen, "region");
  CheckColumnsMatchRows(gen, "nation");
  CheckColumnsMatchRows(gen, "supplier");
  CheckColumnsMatchRows(gen, "customer");
  CheckColumnsMatchRows(gen, "part");
}

TEST(GenerateColumnsTest, MatchesGenerateRowOnWideTables) {
  // lineitem and orders carry dates, decimals and padded strings — the
  // columns they disagree on first if the per-row streams ever diverge.
  DbGen gen(0.001, 7);
  CheckColumnsMatchRows(gen, "lineitem", 200);
  CheckColumnsMatchRows(gen, "orders", 200);
}

TEST(GenerateColumnsTest, ColumnTypesFollowSchema) {
  DbGen gen(0.001);
  const exec::ColumnTable t =
      gen.GenerateColumns("lineitem", 0, 10).value();
  const TableDef* def = gen.catalog().Find("lineitem").value();
  ASSERT_EQ(t.columns.size(), def->columns.size());
  ASSERT_EQ(t.schema.size(), def->columns.size());
  for (size_t c = 0; c < def->columns.size(); ++c) {
    EXPECT_EQ(t.schema.field(c).name, def->columns[c].name);
    EXPECT_EQ(t.columns[c].type(), def->columns[c].type);
  }
}

TEST(GenerateColumnsTest, RangeMatchesSliceOfFullTable) {
  DbGen gen(0.001, 31);
  const exec::ColumnTable full = gen.GenerateColumns("customer").value();
  const exec::ColumnTable part =
      gen.GenerateColumns("customer", 50, 100).value();
  ASSERT_EQ(part.rows, 50u);
  for (uint64_t i = 0; i < part.rows; ++i) {
    for (size_t c = 0; c < part.columns.size(); ++c) {
      const exec::Column& a = part.columns[c];
      const exec::Column& b = full.columns[c];
      switch (a.type()) {
        case ColumnType::kInt:
          EXPECT_EQ(a.IntAt(i), b.IntAt(i + 50));
          break;
        case ColumnType::kDouble:
          EXPECT_EQ(a.DoubleAt(i), b.DoubleAt(i + 50));
          break;
        default:
          EXPECT_EQ(a.StringAt(i), b.StringAt(i + 50));
          break;
      }
    }
  }
}

TEST(GenerateColumnsTest, RejectsBadRanges) {
  DbGen gen(0.001);
  EXPECT_FALSE(gen.GenerateColumns("region", 3, 2).ok());   // begin > end
  EXPECT_FALSE(gen.GenerateColumns("region", 0, 6).ok());   // past the end
  EXPECT_FALSE(gen.GenerateColumns("bogus").ok());
}

TEST(GenerateColumnsTest, ExternalCatalogGenerator) {
  Catalog catalog;
  TableDef t;
  t.name = "vitals";
  t.row_count = 64;
  t.columns = {ColumnDef{"patient_id", ColumnType::kInt, 8.0, 64},
               ColumnDef{"bpm", ColumnType::kDouble, 8.0, 40},
               ColumnDef{"ward", ColumnType::kString, 12.0, 6}};
  ASSERT_TRUE(catalog.AddTable(t).ok());
  DbGen gen(catalog, 42);
  EXPECT_EQ(gen.scale_factor(), 1.0);
  EXPECT_EQ(gen.seed(), 42u);
  EXPECT_EQ(gen.RowCount("vitals").value(), 64u);
  CheckColumnsMatchRows(gen, "vitals");
  // External-catalog int columns draw uniformly over [1, NDV].
  const exec::ColumnTable table = gen.GenerateColumns("vitals").value();
  for (uint64_t i = 0; i < table.rows; ++i) {
    EXPECT_GE(table.columns[0].IntAt(i), 1);
    EXPECT_LE(table.columns[0].IntAt(i), 64);
  }
}

TEST(GenerateColumnsTest, DeterministicAcrossInstances) {
  DbGen a(0.001, 5), b(0.001, 5);
  const uint64_t da =
      exec::ResultDigest(a.GenerateColumns("orders", 0, 100).value());
  const uint64_t db =
      exec::ResultDigest(b.GenerateColumns("orders", 0, 100).value());
  EXPECT_EQ(da, db);
  DbGen c(0.001, 6);
  EXPECT_NE(exec::ResultDigest(c.GenerateColumns("orders", 0, 100).value()),
            da);
}

TEST(CachedTableProviderTest, CapsRowsAndMemoizes) {
  auto cache = std::make_shared<exec::TableCache>(64ull << 20);
  CachedTableProvider provider(DbGen(0.001, 2019), cache, 100);
  auto supplier = provider.GetTable("supplier");  // 10 rows, under the cap
  ASSERT_TRUE(supplier.ok());
  EXPECT_EQ(supplier.value()->rows, 10u);
  auto customer = provider.GetTable("customer");  // 150 rows, capped
  ASSERT_TRUE(customer.ok());
  EXPECT_EQ(customer.value()->rows, 100u);
  auto again = provider.GetTable("customer");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), customer.value().get());
  EXPECT_EQ(cache->Stats().misses, 2u);
  EXPECT_EQ(cache->Stats().hits, 1u);
  EXPECT_FALSE(provider.GetTable("bogus").ok());
}

TEST(CachedTableProviderTest, SharedCacheDistinguishesCatalogs) {
  // Two same-shaped catalogs with different column NDVs must not alias
  // entries when they share a cache.
  auto make_catalog = [](uint64_t ndv) {
    Catalog catalog;
    TableDef t;
    t.name = "obs";
    t.row_count = 32;
    t.columns = {ColumnDef{"id", ColumnType::kInt, 8.0, 32},
                 ColumnDef{"v", ColumnType::kInt, 8.0, ndv}};
    EXPECT_TRUE(catalog.AddTable(t).ok());
    return catalog;
  };
  auto cache = std::make_shared<exec::TableCache>(64ull << 20);
  CachedTableProvider p1(DbGen(make_catalog(4), 9), cache);
  CachedTableProvider p2(DbGen(make_catalog(1000), 9), cache);
  auto t1 = p1.GetTable("obs");
  auto t2 = p2.GetTable("obs");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(cache->Stats().misses, 2u);
  EXPECT_NE(exec::ResultDigest(*t1.value()),
            exec::ResultDigest(*t2.value()));
}

}  // namespace
}  // namespace tpch
}  // namespace midas
