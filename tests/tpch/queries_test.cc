#include "tpch/queries.h"

#include <gtest/gtest.h>

#include "tpch/tpch_schema.h"

namespace midas {
namespace tpch {
namespace {

TEST(QueriesTest, PaperQueryIdsMatchSection42) {
  EXPECT_EQ(PaperQueryIds(), (std::vector<int>{12, 13, 14, 17}));
}

TEST(QueriesTest, AllPaperQueriesBuildAndValidate) {
  auto catalog = MakeCatalog(0.1).ValueOrDie();
  for (int qid : PaperQueryIds()) {
    auto plan = MakeQuery(qid);
    ASSERT_TRUE(plan.ok()) << "Q" << qid;
    EXPECT_TRUE(plan->Validate(catalog).ok()) << "Q" << qid;
  }
}

TEST(QueriesTest, AllPaperQueriesJoinExactlyTwoTables) {
  for (int qid : PaperQueryIds()) {
    auto plan = MakeQuery(qid).ValueOrDie();
    EXPECT_EQ(plan.BaseTables().size(), 2u) << "Q" << qid;
    // Exactly one join operator.
    int joins = 0;
    for (const PlanNode* node : plan.Nodes()) {
      if (node->kind == OperatorKind::kJoin) ++joins;
    }
    EXPECT_EQ(joins, 1) << "Q" << qid;
  }
}

TEST(QueriesTest, QueryTablesMatchTemplates) {
  EXPECT_EQ(QueryTables(12).ValueOrDie(),
            std::make_pair(std::string("orders"), std::string("lineitem")));
  EXPECT_EQ(QueryTables(13).ValueOrDie(),
            std::make_pair(std::string("customer"), std::string("orders")));
  EXPECT_EQ(QueryTables(14).ValueOrDie(),
            std::make_pair(std::string("part"), std::string("lineitem")));
  EXPECT_EQ(QueryTables(17).ValueOrDie(),
            std::make_pair(std::string("part"), std::string("lineitem")));
}

TEST(QueriesTest, UnknownQueryRejected) {
  EXPECT_FALSE(MakeQuery(1).ok());
  EXPECT_FALSE(QueryTables(99).ok());
}

TEST(QueriesTest, ReferenceSelectivitiesAreSmallFractions) {
  for (int qid : PaperQueryIds()) {
    const QueryParameters p = QueryParameters::Reference(qid);
    EXPECT_GT(p.primary_selectivity, 0.0) << "Q" << qid;
    EXPECT_LE(p.primary_selectivity, 1.0) << "Q" << qid;
  }
  // Q12's compound predicate keeps ~1% of lineitem.
  EXPECT_LT(QueryParameters::Reference(12).primary_selectivity, 0.02);
  // Q13's NOT LIKE keeps nearly everything.
  EXPECT_GT(QueryParameters::Reference(13).primary_selectivity, 0.9);
}

TEST(QueriesTest, JitterVariesParametersWithinBounds) {
  Rng rng(3);
  for (int qid : PaperQueryIds()) {
    const QueryParameters ref = QueryParameters::Reference(qid);
    for (int trial = 0; trial < 50; ++trial) {
      auto p = QueryParameters::Jitter(qid, &rng);
      ASSERT_TRUE(p.ok());
      EXPECT_GT(p->primary_selectivity, 0.0);
      EXPECT_LE(p->primary_selectivity, 1.0);
      EXPECT_GE(p->fact_fraction, 0.25);
      EXPECT_LE(p->fact_fraction, 1.0);
      // Jitter stays within the +-50% envelope of the reference.
      EXPECT_LE(p->primary_selectivity, ref.primary_selectivity * 1.5 + 1e-9);
    }
  }
}

TEST(QueriesTest, JitterRejectsNullRngAndUnknownQuery) {
  Rng rng(1);
  EXPECT_FALSE(QueryParameters::Jitter(12, nullptr).ok());
  EXPECT_FALSE(QueryParameters::Jitter(5, &rng).ok());
}

TEST(QueriesTest, FactFractionScalesScannedRows) {
  auto catalog = MakeCatalog(0.1).ValueOrDie();
  QueryParameters narrow = QueryParameters::Reference(12);
  narrow.fact_fraction = 0.25;
  QueryParameters wide = QueryParameters::Reference(12);
  wide.fact_fraction = 1.0;
  QueryPlan plan_narrow = MakeQuery(12, narrow).ValueOrDie();
  QueryPlan plan_wide = MakeQuery(12, wide).ValueOrDie();
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan_narrow).ok());
  ASSERT_TRUE(EstimateCardinalities(catalog, &plan_wide).ok());
  auto scanned_rows = [](const QueryPlan& plan) {
    double rows = 0.0;
    for (const PlanNode* node : plan.Nodes()) {
      if (node->kind == OperatorKind::kScan && node->table == "lineitem") {
        rows = node->output_rows;
      }
    }
    return rows;
  };
  EXPECT_NEAR(scanned_rows(plan_narrow), scanned_rows(plan_wide) * 0.25,
              1.0);
}

TEST(QueriesTest, Q17HasTwoFilters) {
  QueryPlan plan = MakeQuery(17).ValueOrDie();
  int filters = 0;
  for (const PlanNode* node : plan.Nodes()) {
    if (node->kind == OperatorKind::kFilter) ++filters;
  }
  EXPECT_EQ(filters, 2);
}

TEST(QueriesTest, CardinalitiesScaleWithDataset) {
  auto small = MakeCatalog(0.1).ValueOrDie();
  auto large = MakeCatalog(1.0).ValueOrDie();
  for (int qid : PaperQueryIds()) {
    QueryPlan plan_small = MakeQuery(qid).ValueOrDie();
    QueryPlan plan_large = MakeQuery(qid).ValueOrDie();
    ASSERT_TRUE(EstimateCardinalities(small, &plan_small).ok());
    ASSERT_TRUE(EstimateCardinalities(large, &plan_large).ok());
    EXPECT_GT(plan_large.Nodes()[0]->output_bytes * 1.01,
              plan_small.Nodes()[0]->output_bytes)
        << "Q" << qid;
  }
}

}  // namespace
}  // namespace tpch
}  // namespace midas
