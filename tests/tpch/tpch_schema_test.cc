#include "tpch/tpch_schema.h"

#include <gtest/gtest.h>

namespace midas {
namespace tpch {
namespace {

TEST(TpchSchemaTest, CatalogHasEightTables) {
  auto catalog = MakeCatalog(1.0);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->tables().size(), 8u);
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog->Contains(name)) << name;
  }
}

TEST(TpchSchemaTest, Sf1Cardinalities) {
  auto catalog = MakeCatalog(1.0);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->Find("lineitem").ValueOrDie()->row_count, 6'000'000u);
  EXPECT_EQ(catalog->Find("orders").ValueOrDie()->row_count, 1'500'000u);
  EXPECT_EQ(catalog->Find("customer").ValueOrDie()->row_count, 150'000u);
  EXPECT_EQ(catalog->Find("part").ValueOrDie()->row_count, 200'000u);
  EXPECT_EQ(catalog->Find("region").ValueOrDie()->row_count, 5u);
  EXPECT_EQ(catalog->Find("nation").ValueOrDie()->row_count, 25u);
}

TEST(TpchSchemaTest, ScaleFactorScalesBigTablesOnly) {
  auto catalog = MakeCatalog(0.1);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->Find("lineitem").ValueOrDie()->row_count, 600'000u);
  EXPECT_EQ(catalog->Find("region").ValueOrDie()->row_count, 5u);
  EXPECT_EQ(catalog->Find("nation").ValueOrDie()->row_count, 25u);
}

TEST(TpchSchemaTest, TotalBytesRoughlyMatchScaleFactor) {
  // SF 1 is defined as ~1 GB of raw data; our width model should land in
  // the right order of magnitude (0.5 .. 1.5 GB).
  auto catalog = MakeCatalog(1.0);
  ASSERT_TRUE(catalog.ok());
  const double gb = catalog->TotalBytes() / 1e9;
  EXPECT_GT(gb, 0.5);
  EXPECT_LT(gb, 1.5);
}

TEST(TpchSchemaTest, NonPositiveScaleRejected) {
  EXPECT_FALSE(MakeCatalog(0.0).ok());
  EXPECT_FALSE(MakeCatalog(-1.0).ok());
}

TEST(TpchSchemaTest, LineitemHasPaperQueryColumns) {
  auto catalog = MakeCatalog(1.0);
  ASSERT_TRUE(catalog.ok());
  const TableDef* li = catalog->Find("lineitem").ValueOrDie();
  for (const char* col : {"l_orderkey", "l_partkey", "l_shipmode",
                          "l_shipdate", "l_commitdate", "l_receiptdate",
                          "l_quantity"}) {
    EXPECT_TRUE(li->FindColumn(col).ok()) << col;
  }
  EXPECT_EQ(li->FindColumn("l_shipmode").ValueOrDie()->distinct_values, 7u);
}

TEST(TpchSchemaTest, ForeignKeyNdvsTrackReferencedTables) {
  auto catalog = MakeCatalog(0.5);
  ASSERT_TRUE(catalog.ok());
  const TableDef* li = catalog->Find("lineitem").ValueOrDie();
  EXPECT_EQ(li->FindColumn("l_orderkey").ValueOrDie()->distinct_values,
            750'000u);
  const TableDef* orders = catalog->Find("orders").ValueOrDie();
  EXPECT_EQ(orders->FindColumn("o_custkey").ValueOrDie()->distinct_values,
            75'000u);
}

TEST(RowsAtScaleTest, MatchesCatalog) {
  EXPECT_EQ(RowsAtScale("lineitem", 0.1).ValueOrDie(), 600'000u);
  EXPECT_EQ(RowsAtScale("region", 2.0).ValueOrDie(), 5u);
  EXPECT_FALSE(RowsAtScale("unknown", 1.0).ok());
  EXPECT_FALSE(RowsAtScale("lineitem", 0.0).ok());
}

TEST(TpchSchemaTest, PaperScaleConstants) {
  EXPECT_DOUBLE_EQ(kScaleFactor100MiB, 0.1);
  EXPECT_DOUBLE_EQ(kScaleFactor1GiB, 1.0);
}

}  // namespace
}  // namespace tpch
}  // namespace midas
