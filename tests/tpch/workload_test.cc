#include "tpch/workload.h"

#include <set>

#include <gtest/gtest.h>

namespace midas {
namespace tpch {
namespace {

TEST(WorkloadTest, DefaultsToPaperQueries) {
  Workload workload;
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) {
    auto item = workload.Next();
    ASSERT_TRUE(item.ok());
    seen.insert(item->query_id);
  }
  EXPECT_EQ(seen, (std::set<int>{12, 13, 14, 17}));
}

TEST(WorkloadTest, CatalogMatchesScaleFactor) {
  WorkloadOptions options;
  options.scale_factor = 1.0;
  Workload workload(options);
  EXPECT_EQ(workload.catalog().Find("lineitem").ValueOrDie()->row_count,
            6'000'000u);
  EXPECT_DOUBLE_EQ(workload.scale_factor(), 1.0);
}

TEST(WorkloadTest, ItemsValidateAgainstCatalog) {
  Workload workload;
  for (int i = 0; i < 20; ++i) {
    auto item = workload.Next();
    ASSERT_TRUE(item.ok());
    EXPECT_TRUE(item->logical.Validate(workload.catalog()).ok());
  }
}

TEST(WorkloadTest, NextForQueryPinsId) {
  Workload workload;
  for (int i = 0; i < 10; ++i) {
    auto item = workload.NextForQuery(14);
    ASSERT_TRUE(item.ok());
    EXPECT_EQ(item->query_id, 14);
  }
}

TEST(WorkloadTest, ParametersVaryAcrossDraws) {
  Workload workload;
  std::set<double> fractions;
  for (int i = 0; i < 10; ++i) {
    auto item = workload.NextForQuery(12);
    ASSERT_TRUE(item.ok());
    fractions.insert(item->params.fact_fraction);
  }
  EXPECT_GT(fractions.size(), 5u);
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  WorkloadOptions options;
  options.seed = 31337;
  Workload a(options), b(options);
  for (int i = 0; i < 10; ++i) {
    auto ia = a.Next();
    auto ib = b.Next();
    ASSERT_TRUE(ia.ok());
    ASSERT_TRUE(ib.ok());
    EXPECT_EQ(ia->query_id, ib->query_id);
    EXPECT_DOUBLE_EQ(ia->params.primary_selectivity,
                     ib->params.primary_selectivity);
  }
}

TEST(WorkloadTest, RestrictedQuerySet) {
  WorkloadOptions options;
  options.query_ids = {17};
  Workload workload(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(workload.Next().ValueOrDie().query_id, 17);
  }
}

TEST(WorkloadTest, UnknownQueryFails) {
  Workload workload;
  EXPECT_FALSE(workload.NextForQuery(3).ok());
}

}  // namespace
}  // namespace tpch
}  // namespace midas
